(* BOLT's profile format (the fdata/YAML analog): function-relative branch
   records, fall-through ranges and plain IP samples.

   Produced by [Perf2bolt] from raw simulator samples; consumed by the
   rewriter's profile matcher and folded across hosts by the fleet merger
   (lib/fleet).  Text format, one record per line:

     mode lbr|sample
     H <key> <value>                               (provenance header)
     B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
     F <func> <start_off> <end_off> <count>        (LBR fall-through range)
     S <func> <off> <count>                        (non-LBR IP sample)

   Function names never contain spaces by construction.

   Counts are 64-bit and every accumulation saturates at [Int64.max_int]:
   a fleet-wide merge of thousands of shards must degrade to a pinned
   counter, never wrap into garbage (or worse, a negative weight).

   Profiles are data about a binary, not part of it; a malformed or stale
   profile must degrade optimization quality, never correctness.  Parsing
   is therefore lenient by default: malformed and unknown records are
   skipped with a warning each.  [~strict:true] restores the hard
   [Bad_format] failure for tooling that wants it.  Header records are
   new; old readers skip them as unknown tags, old files simply have no
   header. *)

(* ---- saturating 64-bit arithmetic ---- *)

(* [sat_add] is commutative and, over non-negative operands, associative:
   min(max_int, a+b+c) regardless of grouping.  The fleet merger's
   order-independence proof leans on exactly this. *)
let sat_add (a : int64) (b : int64) : int64 =
  if a > Int64.sub Int64.max_int b then Int64.max_int else Int64.add a b

(* Scale a count by a non-negative float factor (shard weight x decay),
   rounding to nearest, saturating on overflow. *)
let sat_scale (c : int64) (f : float) : int64 =
  if f <= 0.0 then 0L
  else
    let x = Float.round (Int64.to_float c *. f) in
    if x >= Int64.to_float Int64.max_int then Int64.max_int else Int64.of_float x

(* Clamp to a native int for consumers feeding int-based machinery
   (edge counts, call-graph weights).  On 64-bit OCaml this only bites
   within a factor of two of saturation. *)
let clamp_int (c : int64) : int =
  if c > Int64.of_int max_int then max_int
  else if c < 0L then 0
  else Int64.to_int c

(* ---- records ---- *)

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;
  br_count : int64;
  br_mispreds : int64;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int64 }

type sample = { sm_func : string; sm_off : int; sm_count : int64 }

(* Shard provenance, carried in `H` records: which host produced the
   profile, against which binary revision, when, and how many raw events
   went into it.  [hd_weight] is a merge-time knob (relative trust /
   traffic share of the host), default 1. *)
type header = {
  hd_host : string;
  hd_build_id : string; (* hex build-id of the profiled binary; "" unknown *)
  hd_timestamp : int; (* seconds since the fleet epoch; 0 unknown *)
  hd_events : int64; (* raw hardware events behind this shard *)
  hd_weight : float;
}

let no_header =
  { hd_host = ""; hd_build_id = ""; hd_timestamp = 0; hd_events = 0L; hd_weight = 1.0 }

type t = {
  lbr : bool;
  header : header option;
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int64;
  fingerprints : Bolt_obj.Fingerprint.func list;
      (* structural fingerprints of the binary the profile was collected
         on, copied from its BELF fingerprint table at conversion time.
         [] for old shards; the raw material for stale-profile matching. *)
}

let empty =
  {
    lbr = true;
    header = None;
    branches = [];
    ranges = [];
    samples = [];
    total_samples = 0L;
    fingerprints = [];
  }

(* Aggregate count of events attributed to a function, used for function
   hotness by the reorder-functions pass. *)
let func_events t =
  let h = Hashtbl.create 64 in
  let add f c = Hashtbl.replace h f (sat_add c (try Hashtbl.find h f with Not_found -> 0L)) in
  List.iter (fun b -> add b.br_from_func b.br_count) t.branches;
  List.iter (fun r -> add r.rg_func r.rg_count) t.ranges;
  List.iter (fun s -> add s.sm_func s.sm_count) t.samples;
  h

(* ---- canonical form ---- *)

(* Sort records and aggregate duplicates (same endpoints -> counts
   saturating-added).  Two profiles holding the same multiset of events
   normalize to the same value — and therefore the same bytes — which is
   what makes merged output independent of shard order and -j. *)
let normalize t =
  let tbl = Hashtbl.create 256 in
  let bump k c m =
    match Hashtbl.find_opt tbl k with
    | Some (c0, m0) -> Hashtbl.replace tbl k (sat_add c0 c, sat_add m0 m)
    | None -> Hashtbl.add tbl k (c, m)
  in
  List.iter
    (fun b ->
      bump (`B (b.br_from_func, b.br_from_off, b.br_to_func, b.br_to_off)) b.br_count
        b.br_mispreds)
    t.branches;
  List.iter (fun r -> bump (`F (r.rg_func, r.rg_start, r.rg_end)) r.rg_count 0L) t.ranges;
  List.iter (fun s -> bump (`S (s.sm_func, s.sm_off)) s.sm_count 0L) t.samples;
  let branches = ref [] and ranges = ref [] and samples = ref [] in
  Hashtbl.iter
    (fun k (c, m) ->
      match k with
      | `B (ff, fo, tf, to_) ->
          branches :=
            {
              br_from_func = ff;
              br_from_off = fo;
              br_to_func = tf;
              br_to_off = to_;
              br_count = c;
              br_mispreds = m;
            }
            :: !branches
      | `F (f, s, e) -> ranges := { rg_func = f; rg_start = s; rg_end = e; rg_count = c } :: !ranges
      | `S (f, o) -> samples := { sm_func = f; sm_off = o; sm_count = c } :: !samples)
    tbl;
  let total =
    List.fold_left (fun a (b : branch) -> sat_add a b.br_count) 0L !branches
    |> fun acc -> List.fold_left (fun a (s : sample) -> sat_add a s.sm_count) acc !samples
  in
  {
    t with
    branches = List.sort compare !branches;
    ranges = List.sort compare !ranges;
    samples = List.sort compare !samples;
    total_samples = total;
    fingerprints = List.sort_uniq compare t.fingerprints;
  }

(* ---- text format ---- *)

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "mode %s\n" (if t.lbr then "lbr" else "sample"));
  (match t.header with
  | Some h ->
      if h.hd_host <> "" then Buffer.add_string b (Printf.sprintf "H host %s\n" h.hd_host);
      if h.hd_build_id <> "" then
        Buffer.add_string b (Printf.sprintf "H build-id %s\n" h.hd_build_id);
      if h.hd_timestamp <> 0 then
        Buffer.add_string b (Printf.sprintf "H timestamp %d\n" h.hd_timestamp);
      if h.hd_events <> 0L then
        Buffer.add_string b (Printf.sprintf "H events %Ld\n" h.hd_events);
      if h.hd_weight <> 1.0 then
        Buffer.add_string b (Printf.sprintf "H weight %h\n" h.hd_weight)
  | None -> ());
  (* G/GB: fingerprints of the profiled binary, for stale matching.  Old
     readers skip them as unknown tags; profiles without them just have
     no G lines. *)
  List.iter
    (fun (f : Bolt_obj.Fingerprint.func) ->
      Buffer.add_string b
        (Printf.sprintf "G %s %d %s %s %s\n" f.fp_func f.fp_size
           (Bolt_obj.Fingerprint.to_hex f.fp_opcode_hash)
           (Bolt_obj.Fingerprint.to_hex f.fp_cfg_hash)
           (if f.fp_calls = [] then "-" else String.concat "," f.fp_calls));
      List.iter
        (fun (blk : Bolt_obj.Fingerprint.block) ->
          Buffer.add_string b
            (Printf.sprintf "GB %s %d %d %s %s\n" f.fp_func blk.bk_off
               blk.bk_size
               (Bolt_obj.Fingerprint.to_hex blk.bk_opcode_hash)
               (Bolt_obj.Fingerprint.to_hex blk.bk_shape_hash)))
        f.fp_blocks)
    t.fingerprints;
  List.iter
    (fun x ->
      Buffer.add_string b
        (Printf.sprintf "B %s %d %s %d %Ld %Ld\n" x.br_from_func x.br_from_off
           x.br_to_func x.br_to_off x.br_count x.br_mispreds))
    t.branches;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "F %s %d %d %Ld\n" r.rg_func r.rg_start r.rg_end r.rg_count))
    t.ranges;
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "S %s %d %Ld\n" s.sm_func s.sm_off s.sm_count))
    t.samples;
  Buffer.contents b

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

exception Bad_format of string

type warning = { w_line : int; w_text : string; w_reason : string }

let pp_warning ppf w =
  Fmt.pf ppf "fdata line %d: %s (%S)" w.w_line w.w_reason w.w_text

(* Malformed lines raise [Reject] internally; [parse] turns that into a
   warning (lenient) or [Bad_format] (strict). *)
exception Reject of string

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what s))

let count_field what s =
  match Int64.of_string_opt s with
  | Some v when v >= 0L -> v
  | Some v -> raise (Reject (Printf.sprintf "%s is negative: %Ld" what v))
  | None -> raise (Reject (Printf.sprintf "%s is not an integer: %s" what s))

let non_negative what v =
  if v < 0 then raise (Reject (Printf.sprintf "%s is negative: %d" what v));
  v

let hash_field what s =
  match Bolt_obj.Fingerprint.of_hex s with
  | Some v -> v
  | None -> raise (Reject (Printf.sprintf "%s is not a hex hash: %s" what s))

let parse ?(strict = false) text : t * warning list =
  let branches = ref [] in
  let ranges = ref [] in
  let samples = ref [] in
  let lbr = ref true in
  let header = ref None in
  (* G lines open a fingerprint (in file order); GB lines append blocks
     to the most recently seen G of the same function *)
  let fp_order : string list ref = ref [] in
  let fp_tbl :
      (string, Bolt_obj.Fingerprint.func * Bolt_obj.Fingerprint.block list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let warnings = ref [] in
  let reject lineno line reason =
    if strict then raise (Bad_format (Printf.sprintf "line %d: %s: %s" lineno reason line));
    warnings := { w_line = lineno; w_text = line; w_reason = reason } :: !warnings
  in
  let set_header f = header := Some (f (Option.value ~default:no_header !header)) in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        (* tolerate CRLF profiles copied across systems *)
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      try
        match String.split_on_char ' ' line with
        | [ "mode"; "lbr" ] -> lbr := true
        | [ "mode"; "sample" ] -> lbr := false
        | [ "mode"; m ] -> raise (Reject (Printf.sprintf "unknown mode %s" m))
        | [ "H"; "host"; v ] -> set_header (fun h -> { h with hd_host = v })
        | [ "H"; "build-id"; v ] -> set_header (fun h -> { h with hd_build_id = v })
        | [ "H"; "timestamp"; v ] ->
            let ts = non_negative "timestamp" (int_field "timestamp" v) in
            set_header (fun h -> { h with hd_timestamp = ts })
        | [ "H"; "events"; v ] ->
            let ev = count_field "events" v in
            set_header (fun h -> { h with hd_events = ev })
        | [ "H"; "weight"; v ] -> (
            match float_of_string_opt v with
            | Some w when w >= 0.0 -> set_header (fun h -> { h with hd_weight = w })
            | _ -> raise (Reject (Printf.sprintf "weight is not a number: %s" v)))
        | [ "H"; k; _ ] -> raise (Reject (Printf.sprintf "unknown header key %s" k))
        | [ "B"; ff; fo; tf; to_; c; m ] ->
            branches :=
              {
                br_from_func = ff;
                br_from_off = non_negative "from offset" (int_field "from offset" fo);
                br_to_func = tf;
                br_to_off = non_negative "to offset" (int_field "to offset" to_);
                br_count = count_field "count" c;
                br_mispreds = count_field "mispredicts" m;
              }
              :: !branches
        | [ "F"; f; s; e; c ] ->
            let rg_start = non_negative "range start" (int_field "range start" s) in
            let rg_end = non_negative "range end" (int_field "range end" e) in
            if rg_end < rg_start then
              raise (Reject (Printf.sprintf "range end %d before start %d" rg_end rg_start));
            ranges :=
              { rg_func = f; rg_start; rg_end; rg_count = count_field "count" c }
              :: !ranges
        | [ "S"; f; o; c ] ->
            samples :=
              {
                sm_func = f;
                sm_off = non_negative "offset" (int_field "offset" o);
                sm_count = count_field "count" c;
              }
              :: !samples
        | [ "G"; f; sz; oh; ch; calls ] ->
            let fp =
              {
                Bolt_obj.Fingerprint.fp_func = f;
                fp_size = non_negative "size" (int_field "size" sz);
                fp_opcode_hash = hash_field "opcode hash" oh;
                fp_cfg_hash = hash_field "cfg hash" ch;
                fp_calls =
                  (if calls = "-" then []
                   else String.split_on_char ',' calls);
                fp_blocks = [];
              }
            in
            if not (Hashtbl.mem fp_tbl f) then fp_order := f :: !fp_order;
            Hashtbl.replace fp_tbl f (fp, ref [])
        | [ "GB"; f; off; sz; oh; sh ] -> (
            match Hashtbl.find_opt fp_tbl f with
            | None -> raise (Reject "GB record before its G record")
            | Some (_, blocks) ->
                blocks :=
                  {
                    Bolt_obj.Fingerprint.bk_off =
                      non_negative "block offset" (int_field "block offset" off);
                    bk_size = non_negative "block size" (int_field "block size" sz);
                    bk_opcode_hash = hash_field "block opcode hash" oh;
                    bk_shape_hash = hash_field "block shape hash" sh;
                  }
                  :: !blocks)
        | [] | [ "" ] -> ()
        | ("B" | "F" | "S" | "G" | "GB" | "mode" | "H") :: _ ->
            raise (Reject "wrong field count")
        | _ -> raise (Reject "unknown record tag")
      with Reject reason -> reject lineno line reason)
    lines;
  let total =
    List.fold_left (fun a (b : branch) -> sat_add a b.br_count) 0L !branches
    |> fun acc ->
    List.fold_left (fun a (s : sample) -> sat_add a s.sm_count) acc !samples
  in
  let fingerprints =
    List.rev_map
      (fun f ->
        let fp, blocks = Hashtbl.find fp_tbl f in
        { fp with Bolt_obj.Fingerprint.fp_blocks = List.rev !blocks })
      !fp_order
  in
  ( {
      lbr = !lbr;
      header = !header;
      branches = List.rev !branches;
      ranges = List.rev !ranges;
      samples = List.rev !samples;
      total_samples = total;
      fingerprints;
    },
    List.rev !warnings )

let load_with_warnings ?strict path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse ?strict text

let load ?strict path = fst (load_with_warnings ?strict path)
