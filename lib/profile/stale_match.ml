(* Stale-profile recovery: match a profile collected on revision N-1
   against the binary of revision N (the Stale Profile Matching recipe —
   structural hashes stamped at build time, fuzzy matching at BOLT time).

   Input: a profile whose header build-id differs from the target
   binary's, carrying the OLD binary's fingerprints (G/GB records), plus
   the NEW binary's fingerprint table.  Output: the same events re-keyed
   to the new binary's function names and offsets, ready for the normal
   [Match_profile.attach] path, plus a per-function recovery breakdown.

   Matching runs in tiers, best evidence first:

   - exact: the function still exists under the same name with identical
     opcode and CFG hashes — or under a different name with an identical
     and unique (opcode, cfg) hash pair (pure rename).  Records are kept
     as-is (offsets are still valid), only renamed if needed.
   - fuzzy: the function exists (by name, or by unique structural
     similarity for renames) but its hashes drifted.  Old blocks are
     aligned to new blocks by hash, and every offset is remapped through
     the alignment; records whose blocks have no counterpart drop.
   - inferred: the function matched but too few blocks aligned to trust
     offset remapping.  Intra-function records are dropped and only
     function-level evidence survives — call edges into the entry, and a
     synthesized entry count when no caller was recorded — leaving the
     block-level counts to [Match_profile.finalize]'s dataflow repair
     (§5.2: entry counts propagate through the CFG).
   - dropped: no plausible counterpart (the function was deleted).  Its
     records are removed entirely, so they cannot spray unknown-function
     diagnostics downstream.

   Everything is deterministic: candidates are scanned in sorted name
   order and ties refuse to match rather than pick arbitrarily. *)

module F = Bolt_obj.Fingerprint

type tier = Exact | Fuzzy | Inferred | Dropped

type stats = {
  st_funcs : int; (* old profiled functions considered *)
  st_exact : int;
  st_fuzzy : int;
  st_inferred : int;
  st_dropped : int;
  st_records_in : int; (* branch+range+sample records before *)
  st_records_kept : int; (* ... and after recovery *)
}

let empty_stats =
  {
    st_funcs = 0;
    st_exact = 0;
    st_fuzzy = 0;
    st_inferred = 0;
    st_dropped = 0;
    st_records_in = 0;
    st_records_kept = 0;
  }

(* Componentwise sum, for aggregating per-shard recoveries into one
   fleet-level breakdown. *)
let add_stats a b =
  {
    st_funcs = a.st_funcs + b.st_funcs;
    st_exact = a.st_exact + b.st_exact;
    st_fuzzy = a.st_fuzzy + b.st_fuzzy;
    st_inferred = a.st_inferred + b.st_inferred;
    st_dropped = a.st_dropped + b.st_dropped;
    st_records_in = a.st_records_in + b.st_records_in;
    st_records_kept = a.st_records_kept + b.st_records_kept;
  }

(* Share of profiled functions whose data survived in some form. *)
let recovery_rate st =
  if st.st_funcs = 0 then 1.0
  else
    float_of_int (st.st_exact + st.st_fuzzy + st.st_inferred)
    /. float_of_int st.st_funcs

let pp_stats ppf st =
  Fmt.pf ppf "%d functions: %d exact, %d fuzzy, %d inferred, %d dropped (%d/%d records kept)"
    st.st_funcs st.st_exact st.st_fuzzy st.st_inferred st.st_dropped
    st.st_records_kept st.st_records_in

(* A profile is stale w.r.t. a target build when both are stamped and
   they disagree.  Unstamped sides can't be judged — not stale. *)
let is_stale ~build_id (p : Fdata.t) =
  build_id <> ""
  &&
  match p.Fdata.header with
  | Some h -> h.Fdata.hd_build_id <> "" && h.Fdata.hd_build_id <> build_id
  | None -> false

(* ---- block alignment ---- *)

(* Pair old blocks with new blocks.  Equal counts: positional (straight-
   line edits keep the block list shape).  Unequal: greedy two-pointer
   walk pairing blocks that agree on either hash, skipping from the side
   with more blocks left — insertions and deletions shift alignment by
   exactly the edit distance. *)
let align_blocks (olds : F.block array) (news : F.block array) :
    (int * int) list =
  let no = Array.length olds and nn = Array.length news in
  if no = nn then List.init no (fun i -> (i, i))
  else begin
    let pairs = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < no && !j < nn do
      let ob = olds.(!i) and nb = news.(!j) in
      if
        ob.F.bk_opcode_hash = nb.F.bk_opcode_hash
        || ob.F.bk_shape_hash = nb.F.bk_shape_hash
      then begin
        pairs := (!i, !j) :: !pairs;
        incr i;
        incr j
      end
      else if no - !i > nn - !j then incr i
      else incr j
    done;
    List.rev !pairs
  end

(* An offset translator built from an alignment: [map_start] translates
   exact old block starts (branch targets must stay block starts to
   attach as edges), [map_within] translates by containment (branch
   sources and samples land anywhere inside a block). *)
type offmap = {
  map_start : int -> int option;
  map_within : int -> int option;
  quality : float; (* aligned fraction of old blocks *)
}

let identity_offmap =
  { map_start = (fun o -> Some o); map_within = (fun o -> Some o); quality = 1.0 }

let make_offmap (old_fp : F.func) (new_fp : F.func) : offmap =
  let olds = Array.of_list old_fp.F.fp_blocks in
  let news = Array.of_list new_fp.F.fp_blocks in
  let pairs = align_blocks olds news in
  let start_tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, j) -> Hashtbl.replace start_tbl olds.(i).F.bk_off news.(j).F.bk_off)
    pairs;
  let pair_of_old = Hashtbl.create 16 in
  List.iter (fun (i, j) -> Hashtbl.replace pair_of_old i j) pairs;
  (* containing old block, by binary search over sorted starts *)
  let containing off =
    let lo = ref 0 and hi = ref (Array.length olds - 1) in
    let res = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let b = olds.(mid) in
      if off < b.F.bk_off then hi := mid - 1
      else if off >= b.F.bk_off + b.F.bk_size then lo := mid + 1
      else begin
        res := Some mid;
        lo := !hi + 1
      end
    done;
    !res
  in
  {
    map_start = (fun o -> Hashtbl.find_opt start_tbl o);
    map_within =
      (fun o ->
        match containing o with
        | None -> None
        | Some i -> (
            match Hashtbl.find_opt pair_of_old i with
            | None -> None
            | Some j ->
                let ob = olds.(i) and nb = news.(j) in
                Some (nb.F.bk_off + min (o - ob.F.bk_off) (max 0 (nb.F.bk_size - 1)))));
    quality =
      (let no = Array.length olds in
       if no = 0 then 1.0 else float_of_int (List.length pairs) /. float_of_int no);
  }

(* Below this alignment quality, offset remapping is noise: degrade to
   entry-count inference instead of attaching counts to wrong blocks. *)
let min_fuzzy_quality = 0.5

(* ---- function matching ---- *)

type mapping = { mp_tier : tier; mp_name : string; mp_off : offmap }

let jaccard a b =
  match (a, b) with
  | [], [] -> 1.0
  | _ ->
      let sa = List.sort_uniq compare a and sb = List.sort_uniq compare b in
      let inter =
        List.length (List.filter (fun x -> List.mem x sb) sa)
      in
      let union = List.length sa + List.length sb - inter in
      if union = 0 then 1.0 else float_of_int inter /. float_of_int union

(* Similarity evidence for rename candidates: hash agreement dominates,
   call-set and block-count agreement break the tie. *)
let similarity (o : F.func) (n : F.func) =
  (if o.F.fp_opcode_hash = n.F.fp_opcode_hash then 2 else 0)
  + (if o.F.fp_cfg_hash = n.F.fp_cfg_hash then 2 else 0)
  + (if List.length o.F.fp_blocks = List.length n.F.fp_blocks then 1 else 0)
  + if jaccard o.F.fp_calls n.F.fp_calls >= 0.5 then 1 else 0

let min_rename_score = 3

(* Match every old fingerprint to a tier + target.  [profiled] restricts
   the stats to functions that actually carry records. *)
let match_functions (old_fps : F.func list) (new_fps : F.func list) :
    (string, mapping) Hashtbl.t =
  let result = Hashtbl.create 64 in
  let new_by_name = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace new_by_name f.F.fp_func f) new_fps;
  let claimed = Hashtbl.create 64 in
  let olds = List.sort (fun a b -> compare a.F.fp_func b.F.fp_func) old_fps in
  (* tier the name-preserving matches first: they also pin down which new
     functions are NOT rename targets *)
  let renames_pending = ref [] in
  List.iter
    (fun (o : F.func) ->
      match Hashtbl.find_opt new_by_name o.F.fp_func with
      | Some n ->
          Hashtbl.replace claimed n.F.fp_func ();
          if
            o.F.fp_opcode_hash = n.F.fp_opcode_hash
            && o.F.fp_cfg_hash = n.F.fp_cfg_hash
          then
            Hashtbl.replace result o.F.fp_func
              { mp_tier = Exact; mp_name = n.F.fp_func; mp_off = identity_offmap }
          else
            let om = make_offmap o n in
            let tier = if om.quality >= min_fuzzy_quality then Fuzzy else Inferred in
            Hashtbl.replace result o.F.fp_func
              { mp_tier = tier; mp_name = n.F.fp_func; mp_off = om }
      | None -> renames_pending := o :: !renames_pending)
    olds;
  (* rename detection over the leftovers, in sorted order so claiming is
     deterministic *)
  let unclaimed () =
    List.filter (fun n -> not (Hashtbl.mem claimed n.F.fp_func)) new_fps
    |> List.sort (fun a b -> compare a.F.fp_func b.F.fp_func)
  in
  List.iter
    (fun (o : F.func) ->
      let cands = unclaimed () in
      (* a unique, structurally-identical candidate is a pure rename *)
      let exact_cands =
        List.filter
          (fun n ->
            n.F.fp_opcode_hash = o.F.fp_opcode_hash
            && n.F.fp_cfg_hash = o.F.fp_cfg_hash)
          cands
      in
      match exact_cands with
      | [ n ] ->
          Hashtbl.replace claimed n.F.fp_func ();
          Hashtbl.replace result o.F.fp_func
            { mp_tier = Exact; mp_name = n.F.fp_func; mp_off = identity_offmap }
      | _ -> (
          (* otherwise: strongest similarity, but only when unambiguous *)
          let scored =
            List.map (fun n -> (similarity o n, n)) cands
            |> List.filter (fun (s, _) -> s >= min_rename_score)
            |> List.sort (fun (sa, a) (sb, b) ->
                   compare (-sa, a.F.fp_func) (-sb, b.F.fp_func))
          in
          match scored with
          | (s1, n) :: rest
            when (match rest with (s2, _) :: _ -> s2 < s1 | [] -> true) ->
              Hashtbl.replace claimed n.F.fp_func ();
              let om = make_offmap o n in
              let tier =
                if om.quality >= min_fuzzy_quality then Fuzzy else Inferred
              in
              Hashtbl.replace result o.F.fp_func
                { mp_tier = tier; mp_name = n.F.fp_func; mp_off = om }
          | _ ->
              Hashtbl.replace result o.F.fp_func
                { mp_tier = Dropped; mp_name = o.F.fp_func; mp_off = identity_offmap }))
    (List.sort (fun a b -> compare a.F.fp_func b.F.fp_func) !renames_pending);
  result

(* ---- record rewriting ---- *)

(* Synthetic caller for inferred entry counts; [Match_profile.attach]
   never resolves the source of a call record, so the ghost name is safe
   and self-describing in dumps. *)
let ghost_caller = "<stale-inferred>"

let recover ~(fingerprints : F.t) ~(build_id : string) (p : Fdata.t) :
    Fdata.t * stats =
  let mappings = match_functions p.Fdata.fingerprints fingerprints in
  let lookup f = Hashtbl.find_opt mappings f in
  (* functions that actually carry records, for the stats *)
  let profiled = Hashtbl.create 64 in
  let note f = if Hashtbl.mem mappings f then Hashtbl.replace profiled f () in
  List.iter
    (fun (b : Fdata.branch) ->
      note b.Fdata.br_from_func;
      note b.Fdata.br_to_func)
    p.Fdata.branches;
  List.iter (fun (r : Fdata.range) -> note r.Fdata.rg_func) p.Fdata.ranges;
  List.iter (fun (s : Fdata.sample) -> note s.Fdata.sm_func) p.Fdata.samples;
  let rename f = match lookup f with Some m -> m.mp_name | None -> f in
  let tier_of f = match lookup f with Some m -> Some m.mp_tier | None -> None in
  (* inferred functions whose entry count must be synthesized if no call
     record into them survives *)
  let inferred_entry_seen = Hashtbl.create 16 in
  let inferred_hottest = Hashtbl.create 16 in
  let branches = ref [] in
  List.iter
    (fun (b : Fdata.branch) ->
      let intra = b.Fdata.br_from_func = b.Fdata.br_to_func && b.Fdata.br_to_off <> 0 in
      if intra then begin
        match lookup b.Fdata.br_from_func with
        | None -> branches := b :: !branches (* no fingerprint: passthrough *)
        | Some { mp_tier = Exact; mp_name; _ } ->
            branches :=
              { b with Fdata.br_from_func = mp_name; br_to_func = mp_name }
              :: !branches
        | Some { mp_tier = Fuzzy; mp_name; mp_off } -> (
            match
              (mp_off.map_within b.Fdata.br_from_off, mp_off.map_start b.Fdata.br_to_off)
            with
            | Some fo, Some to_ ->
                branches :=
                  {
                    b with
                    Fdata.br_from_func = mp_name;
                    br_from_off = fo;
                    br_to_func = mp_name;
                    br_to_off = to_;
                  }
                  :: !branches
            | _ -> () (* block vanished: drop the edge *))
        | Some { mp_tier = Inferred; mp_name; _ } ->
            (* block-level data is untrustworthy; remember the hottest
               edge as an entry-count floor for the dataflow repair *)
            let prev =
              try Hashtbl.find inferred_hottest mp_name with Not_found -> 0L
            in
            if b.Fdata.br_count > prev then
              Hashtbl.replace inferred_hottest mp_name b.Fdata.br_count
        | Some { mp_tier = Dropped; _ } -> ()
      end
      else begin
        (* cross-function transfer (or entry branch): target must be
           alive; the source side of a call record is never resolved by
           the matcher, so a best-effort rename suffices *)
        match tier_of b.Fdata.br_to_func with
        | Some Dropped -> ()
        | _ ->
            let to_off =
              if b.Fdata.br_to_off = 0 then Some 0
              else
                match lookup b.Fdata.br_to_func with
                | None | Some { mp_tier = Exact; _ } -> Some b.Fdata.br_to_off
                | Some { mp_tier = Fuzzy; mp_off; _ } ->
                    mp_off.map_start b.Fdata.br_to_off
                | Some { mp_tier = Inferred | Dropped; _ } -> None
            in
            (match to_off with
            | None -> ()
            | Some to_off ->
                let from_off =
                  match lookup b.Fdata.br_from_func with
                  | Some { mp_tier = Fuzzy; mp_off; _ } -> (
                      match mp_off.map_within b.Fdata.br_from_off with
                      | Some o -> o
                      | None -> b.Fdata.br_from_off)
                  | _ -> b.Fdata.br_from_off
                in
                if b.Fdata.br_to_off = 0 then
                  Hashtbl.replace inferred_entry_seen
                    (rename b.Fdata.br_to_func) ();
                branches :=
                  {
                    b with
                    Fdata.br_from_func = rename b.Fdata.br_from_func;
                    br_from_off = from_off;
                    br_to_func = rename b.Fdata.br_to_func;
                    br_to_off = to_off;
                  }
                  :: !branches)
      end)
    p.Fdata.branches;
  (* synthesize entry counts for inferred functions nobody calls in the
     profile (a main-like root): the hottest intra edge is a conservative
     stand-in that the flow repair then spreads over the CFG *)
  Hashtbl.iter
    (fun name hottest ->
      if not (Hashtbl.mem inferred_entry_seen name) && hottest > 0L then
        branches :=
          {
            Fdata.br_from_func = ghost_caller;
            br_from_off = 0;
            br_to_func = name;
            br_to_off = 0;
            br_count = hottest;
            br_mispreds = 0L;
          }
          :: !branches)
    inferred_hottest;
  let ranges =
    List.filter_map
      (fun (r : Fdata.range) ->
        match lookup r.Fdata.rg_func with
        | None -> Some r
        | Some { mp_tier = Exact; mp_name; _ } -> Some { r with Fdata.rg_func = mp_name }
        | Some { mp_tier = Fuzzy; mp_name; mp_off } -> (
            match
              (mp_off.map_within r.Fdata.rg_start, mp_off.map_within r.Fdata.rg_end)
            with
            | Some s, Some e when e >= s ->
                Some { Fdata.rg_func = mp_name; rg_start = s; rg_end = e; rg_count = r.Fdata.rg_count }
            | _ -> None)
        | Some { mp_tier = Inferred | Dropped; _ } -> None)
      p.Fdata.ranges
  in
  let samples =
    List.filter_map
      (fun (s : Fdata.sample) ->
        match lookup s.Fdata.sm_func with
        | None -> Some s
        | Some { mp_tier = Exact; mp_name; _ } -> Some { s with Fdata.sm_func = mp_name }
        | Some { mp_tier = Fuzzy; mp_name; mp_off } -> (
            match mp_off.map_within s.Fdata.sm_off with
            | Some o -> Some { Fdata.sm_func = mp_name; sm_off = o; sm_count = s.Fdata.sm_count }
            | None -> None)
        | Some { mp_tier = Inferred; mp_name; _ } ->
            (* function-level hotness survives even when offsets don't *)
            Some { Fdata.sm_func = mp_name; sm_off = 0; sm_count = s.Fdata.sm_count }
        | Some { mp_tier = Dropped; _ } -> None)
      p.Fdata.samples
  in
  let recovered =
    Fdata.normalize
      {
        p with
        Fdata.header =
          (* the recovered profile now describes the target revision *)
          Some
            {
              (Option.value ~default:Fdata.no_header p.Fdata.header) with
              Fdata.hd_build_id = build_id;
            };
        branches = !branches;
        ranges;
        samples;
        fingerprints;
      }
  in
  let count_tier t =
    Hashtbl.fold
      (fun f () acc ->
        match lookup f with Some m when m.mp_tier = t -> acc + 1 | _ -> acc)
      profiled 0
  in
  let records (q : Fdata.t) =
    List.length q.Fdata.branches + List.length q.Fdata.ranges
    + List.length q.Fdata.samples
  in
  ( recovered,
    {
      st_funcs = Hashtbl.length profiled;
      st_exact = count_tier Exact;
      st_fuzzy = count_tier Fuzzy;
      st_inferred = count_tier Inferred;
      st_dropped = count_tier Dropped;
      st_records_in = records p;
      st_records_kept = records recovered;
    } )

(* One-shot entry point: recover only when the profile is actually stale
   and both sides carry fingerprints.  [None] means "use the profile
   as-is" — fresh, unstamped, or unmatchable. *)
let recover_if_stale ~(fingerprints : F.t) ~(build_id : string) (p : Fdata.t) :
    (Fdata.t * stats) option =
  if
    is_stale ~build_id p
    && p.Fdata.fingerprints <> []
    && fingerprints <> []
  then Some (recover ~fingerprints ~build_id p)
  else None
