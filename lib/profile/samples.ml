(* On-disk format for raw sample aggregates — the perf.data analog that
   `bsim --record` writes and `perf2bolt` consumes. *)

module Machine = Bolt_sim.Machine

let magic = "BPRF"

let save path (p : Machine.raw_profile) =
  let b = Bolt_obj.Buf.writer () in
  Bolt_obj.Buf.add_string b magic;
  Bolt_obj.Buf.u8 b (if p.rp_lbr then 1 else 0);
  Bolt_obj.Buf.i64 b p.rp_samples;
  Bolt_obj.Buf.u32 b (Hashtbl.length p.rp_branches);
  Hashtbl.iter
    (fun (f, t) (c, m) ->
      Bolt_obj.Buf.i64 b f;
      Bolt_obj.Buf.i64 b t;
      Bolt_obj.Buf.i64 b !c;
      Bolt_obj.Buf.i64 b !m)
    p.rp_branches;
  Bolt_obj.Buf.u32 b (Hashtbl.length p.rp_traces);
  Hashtbl.iter
    (fun (s, e) c ->
      Bolt_obj.Buf.i64 b s;
      Bolt_obj.Buf.i64 b e;
      Bolt_obj.Buf.i64 b !c)
    p.rp_traces;
  Bolt_obj.Buf.u32 b (Hashtbl.length p.rp_ips);
  Hashtbl.iter
    (fun ip c ->
      Bolt_obj.Buf.i64 b ip;
      Bolt_obj.Buf.i64 b !c)
    p.rp_ips;
  let oc = open_out_bin path in
  output_string oc (Bolt_obj.Buf.contents b);
  close_out oc

let load path : Machine.raw_profile =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let r = Bolt_obj.Buf.reader s in
  Bolt_obj.Buf.need r 4;
  if String.sub s 0 4 <> magic then raise (Bolt_obj.Buf.Corrupt "bad sample magic");
  r.Bolt_obj.Buf.pos <- 4;
  let lbr = Bolt_obj.Buf.r_u8 r = 1 in
  let samples = Bolt_obj.Buf.r_i64 r in
  let p = Machine.new_raw_profile lbr in
  p.rp_samples <- samples;
  let nb = Bolt_obj.Buf.r_u32 r in
  for _ = 1 to nb do
    let f = Bolt_obj.Buf.r_i64 r in
    let t = Bolt_obj.Buf.r_i64 r in
    let c = Bolt_obj.Buf.r_i64 r in
    let m = Bolt_obj.Buf.r_i64 r in
    Hashtbl.replace p.rp_branches (f, t) (ref c, ref m)
  done;
  let nt = Bolt_obj.Buf.r_u32 r in
  for _ = 1 to nt do
    let a = Bolt_obj.Buf.r_i64 r in
    let e = Bolt_obj.Buf.r_i64 r in
    let c = Bolt_obj.Buf.r_i64 r in
    Hashtbl.replace p.rp_traces (a, e) (ref c)
  done;
  let ni = Bolt_obj.Buf.r_u32 r in
  for _ = 1 to ni do
    let ip = Bolt_obj.Buf.r_i64 r in
    let c = Bolt_obj.Buf.r_i64 r in
    Hashtbl.replace p.rp_ips ip (ref c)
  done;
  p
