(** BOLT's profile format (the fdata/YAML analog): function-relative
    branch records, LBR fall-through ranges and plain IP samples.

    Text format, one record per line:
    {v
    mode lbr|sample
    H <key> <value>
    B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
    F <func> <start_off> <end_off> <count>
    S <func> <off> <count>
    G <func> <size> <opcode_hash> <cfg_hash> <callee,callee|->
    GB <func> <off> <size> <opcode_hash> <shape_hash>
    v}

    [G]/[GB] records carry the structural fingerprints of the binary the
    profile was collected on (copied from its BELF fingerprint table), the
    raw material for stale-profile matching when the profiled revision and
    the optimized revision differ.

    Counts are 64-bit; all accumulation saturates at [Int64.max_int] so a
    fleet-wide merge can only pin a counter, never wrap it.

    A profile is data {e about} a binary, not part of it: a malformed or
    stale profile must degrade optimization quality, never correctness.
    Parsing is lenient by default — malformed and unknown records are
    skipped, each producing a {!warning} — and strict on request.  [H]
    header records are skipped by pre-header readers, and files without
    them parse to [header = None], so the format stays compatible both
    ways. *)

(** Saturating 64-bit add: [min (max_int, a + b)].  Commutative, and
    associative over non-negative operands — the property the fleet
    merger's order-independence rests on. *)
val sat_add : int64 -> int64 -> int64

(** [sat_scale c f] rounds [c *. f] to the nearest count, saturating at
    [Int64.max_int]; non-positive factors yield [0L]. *)
val sat_scale : int64 -> float -> int64

(** Clamp a count to a native [int] for consumers feeding int-based
    machinery (edge weights, call-graph nodes). *)
val clamp_int : int64 -> int

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;  (** 0 means the target's entry: a call or tail transfer *)
  br_count : int64;
  br_mispreds : int64;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int64 }

type sample = { sm_func : string; sm_off : int; sm_count : int64 }

(** Shard provenance carried in [H] records: who produced the profile,
    against which binary revision, when, and from how many raw events. *)
type header = {
  hd_host : string;
  hd_build_id : string;  (** hex build-id of the profiled binary; [""] unknown *)
  hd_timestamp : int;  (** seconds since the fleet epoch; [0] unknown *)
  hd_events : int64;  (** raw hardware events behind this shard *)
  hd_weight : float;  (** merge-time relative weight; default [1.0] *)
}

val no_header : header
(** All-defaults header: empty host/build-id, timestamp 0, weight 1. *)

type t = {
  lbr : bool;  (** false: only [samples] are meaningful (§5's non-LBR mode) *)
  header : header option;
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int64;
  fingerprints : Bolt_obj.Fingerprint.func list;
      (** fingerprints of the profiled binary ([G]/[GB] records); [[]] for
          shards converted before fingerprinting existed *)
}

val empty : t

(** Aggregate event count attributed to each function — the hotness the
    reorder-functions pass sorts by. *)
val func_events : t -> (string, int64) Hashtbl.t

(** Canonical form: duplicate records (same endpoints) aggregated with
    {!sat_add}, then sorted.  Profiles holding the same multiset of events
    normalize to identical values — and identical bytes — which is what
    makes merged output independent of shard order and [-j]. *)
val normalize : t -> t

val to_string : t -> string
(** Canonical text dump, via the iocore arena writer (hand-rolled
    decimal/hex emission — no Printf per record). *)

val to_string_legacy : t -> string
(** The pre-iocore Printf emitter, kept as the parity oracle and the
    baseline the iocore bench measures.  Byte-identical to
    {!to_string}. *)

val save : string -> t -> unit

(** Raised by strict-mode parsing on the first malformed record. *)
exception Bad_format of string

(** One skipped record from a lenient parse. *)
type warning = { w_line : int; w_text : string; w_reason : string }

val pp_warning : Format.formatter -> warning -> unit

val default_max_warnings : int
(** Lenient parses keep at most this many per-line warnings (100) before
    folding the remainder into a single "+K more malformed lines skipped"
    summary warning ([w_line = 0], [w_text = ""]), so a corrupt
    million-line fleet shard cannot flood stderr. *)

(** [parse text] reads the text format.  Lenient by default: malformed
    records (wrong field counts, non-integer or negative fields, unknown
    tags, inverted ranges) are skipped and reported as warnings, capped
    at [max_warnings] (default {!default_max_warnings}) plus the summary.
    With [~strict:true] the first malformed record raises {!Bad_format}.

    Implemented on the iocore allocation-free lexer: index-based field
    scanning, integers parsed in place, strings materialized only for
    fields a surviving record keeps.  Accept/reject behaviour and
    warning texts match the legacy split-based parser exactly
    ({!parse_legacy}, the property the iocore parity suite checks). *)
val parse : ?strict:bool -> ?max_warnings:int -> string -> t * warning list

(** The pre-iocore parser ([String.split_on_char] per line and field),
    kept verbatim: the parity oracle and the bench baseline.  Warnings
    are uncapped. *)
val parse_legacy : ?strict:bool -> string -> t * warning list

(** Streaming form of {!parse} for consumers that must not materialize
    record lists (the fleet merger ingesting million-line shards):
    [branch]/[range]/[sample] are invoked per record in file order, and
    the returned profile carries only the small parts — [lbr], [header],
    [fingerprints], [total_samples] — with empty record lists. *)
val scan :
  ?strict:bool ->
  ?max_warnings:int ->
  ?branch:(branch -> unit) ->
  ?range:(range -> unit) ->
  ?sample:(sample -> unit) ->
  string ->
  t * warning list

val load_with_warnings :
  ?strict:bool -> ?max_warnings:int -> string -> t * warning list

val load : ?strict:bool -> string -> t
