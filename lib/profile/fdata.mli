(** BOLT's profile format (the fdata/YAML analog): function-relative
    branch records, LBR fall-through ranges and plain IP samples.

    Text format, one record per line:
    {v
    mode lbr|sample
    B <from_func> <from_off> <to_func> <to_off> <count> <mispreds>
    F <func> <start_off> <end_off> <count>
    S <func> <off> <count>
    v}

    A profile is data {e about} a binary, not part of it: a malformed or
    stale profile must degrade optimization quality, never correctness.
    Parsing is lenient by default — malformed and unknown records are
    skipped, each producing a {!warning} — and strict on request. *)

type branch = {
  br_from_func : string;
  br_from_off : int;
  br_to_func : string;
  br_to_off : int;  (** 0 means the target's entry: a call or tail transfer *)
  br_count : int;
  br_mispreds : int;
}

type range = { rg_func : string; rg_start : int; rg_end : int; rg_count : int }

type sample = { sm_func : string; sm_off : int; sm_count : int }

type t = {
  lbr : bool;  (** false: only [samples] are meaningful (§5's non-LBR mode) *)
  branches : branch list;
  ranges : range list;
  samples : sample list;
  total_samples : int;
}

val empty : t

(** Aggregate event count attributed to each function — the hotness the
    reorder-functions pass sorts by. *)
val func_events : t -> (string, int) Hashtbl.t

val to_string : t -> string
val save : string -> t -> unit

(** Raised by strict-mode parsing on the first malformed record. *)
exception Bad_format of string

(** One skipped record from a lenient parse. *)
type warning = { w_line : int; w_text : string; w_reason : string }

val pp_warning : Format.formatter -> warning -> unit

(** [parse text] reads the text format.  Lenient by default: malformed
    records (wrong field counts, non-integer or negative fields, unknown
    tags, inverted ranges) are skipped and reported as warnings.  With
    [~strict:true] the first malformed record raises {!Bad_format}. *)
val parse : ?strict:bool -> string -> t * warning list

val load_with_warnings : ?strict:bool -> string -> t * warning list
val load : ?strict:bool -> string -> t
