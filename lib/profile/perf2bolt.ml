(* perf2bolt: convert raw simulator samples (absolute addresses) into the
   function-relative fdata profile, using the executable's symbol table.

   Mirrors the real tool: branch records whose endpoints fall outside any
   known function are dropped; fall-through ranges are only kept when both
   ends land in the same function.

   Output is canonical (deduplicated + sorted, via [Fdata.normalize]):
   distinct absolute address pairs can resolve to the same
   function-relative record, and one aggregated line per distinct record
   keeps shard files small and fleet merges cheap. *)

open Bolt_obj

let convert ?header (exe : Objfile.t) (raw : Bolt_sim.Machine.raw_profile) : Fdata.t =
  let funcs =
    Objfile.function_symbols exe
    |> List.map (fun (s : Types.symbol) -> (s.sym_value, s.sym_value + s.sym_size, s.sym_name))
    |> Array.of_list
  in
  Array.sort compare funcs;
  let resolve addr =
    let lo = ref 0 and hi = ref (Array.length funcs - 1) in
    let res = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let a, b, name = funcs.(mid) in
      if addr < a then hi := mid - 1
      else if addr >= b then lo := mid + 1
      else begin
        res := Some (name, addr - a);
        lo := !hi + 1
      end
    done;
    !res
  in
  let c64 n = Int64.of_int (max 0 n) in
  let branches = ref [] in
  Hashtbl.iter
    (fun (f, t) (cnt, mis) ->
      match (resolve f, resolve t) with
      | Some (ff, fo), Some (tf, to_) ->
          branches :=
            {
              Fdata.br_from_func = ff;
              br_from_off = fo;
              br_to_func = tf;
              br_to_off = to_;
              br_count = c64 !cnt;
              br_mispreds = c64 !mis;
            }
            :: !branches
      | _ -> ())
    raw.rp_branches;
  let ranges = ref [] in
  Hashtbl.iter
    (fun (s, e) cnt ->
      match (resolve s, resolve e) with
      | Some (f1, o1), Some (f2, o2) when f1 = f2 && o2 >= o1 ->
          ranges :=
            { Fdata.rg_func = f1; rg_start = o1; rg_end = o2; rg_count = c64 !cnt }
            :: !ranges
      | _ -> ())
    raw.rp_traces;
  let samples = ref [] in
  Hashtbl.iter
    (fun ip cnt ->
      match resolve ip with
      | Some (f, o) ->
          samples := { Fdata.sm_func = f; sm_off = o; sm_count = c64 !cnt } :: !samples
      | None -> ())
    raw.rp_ips;
  Fdata.normalize
    {
      Fdata.lbr = raw.rp_lbr;
      header;
      branches = !branches;
      ranges = !ranges;
      samples = !samples;
      total_samples = 0L (* recomputed by normalize *);
      (* carry the profiled binary's fingerprints so the shard can be
         matched against a later revision once this one is stale *)
      fingerprints = exe.Objfile.fingerprints;
    }
