(* The BELF container: relocatable objects and linked executables.

   A linked executable keeps its symbol table; when the linker runs with
   [emit_relocs] it also keeps relocations, which is what enables BOLT's
   relocations mode (whole-binary function reordering).  Frame descriptors
   and exception tables ride along and must be kept consistent by any
   rewriter. *)

open Types

type kind = Object | Executable

type t = {
  kind : kind;
  entry : int; (* entry address; 0 for objects *)
  build_id : string; (* hex digest of the contents; "" when unstamped *)
  sections : section list;
  symbols : symbol list;
  relocs : reloc list;
  fdes : fde list;
  lsdas : lsda list;
  dbgs : dbg list;
  fingerprints : Fingerprint.func list; (* v5; [] when unstamped or pre-v5 *)
}

let empty kind =
  {
    kind;
    entry = 0;
    build_id = "";
    sections = [];
    symbols = [];
    relocs = [];
    fdes = [];
    lsdas = [];
    dbgs = [];
    fingerprints = [];
  }

(* Deterministic build-id: a digest of everything that defines the
   binary's behaviour — kind, entry, and each section's name/kind/addr/
   size/data.  Two identical links get identical ids; any code or layout
   change (including a BOLT rewrite) produces a new revision.  Symbols and
   metadata are deliberately excluded so a stamp never invalidates
   itself. *)
let compute_build_id t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (match t.kind with Object -> "obj" | Executable -> "exe");
  Buffer.add_string b (string_of_int t.entry);
  List.iter
    (fun s ->
      Buffer.add_string b s.sec_name;
      Buffer.add_string b (string_of_int (section_kind_code s.sec_kind));
      Buffer.add_string b (string_of_int s.sec_addr);
      Buffer.add_string b (string_of_int s.sec_size);
      Buffer.add_char b '\x00';
      Buffer.add_bytes b s.sec_data)
    t.sections;
  Digest.to_hex (Digest.string (Buffer.contents b))

let stamp_build_id t = { t with build_id = compute_build_id t }

(* Structural fingerprints are derived from sections+symbols only, and the
   build-id ignores metadata, so stamping commutes with [stamp_build_id]
   and never invalidates the id. *)
let stamp_fingerprints t =
  {
    t with
    fingerprints = Fingerprint.compute ~sections:t.sections ~symbols:t.symbols;
  }

let find_section t name =
  List.find_opt (fun s -> s.sec_name = name) t.sections

let section_exn t name =
  match find_section t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Objfile: no section %s" name)

let find_symbol t name = List.find_opt (fun s -> s.sym_name = name) t.symbols

(* Function symbols sorted by address. *)
let function_symbols t =
  List.filter (fun s -> s.sym_kind = Func && s.sym_section <> "") t.symbols
  |> List.sort (fun a b -> compare a.sym_value b.sym_value)

(* Innermost function symbol covering [addr], by value+size. *)
let function_at t addr =
  List.find_opt
    (fun s ->
      s.sym_kind = Func && addr >= s.sym_value && addr < s.sym_value + s.sym_size)
    t.symbols

let section_at t addr =
  List.find_opt
    (fun s -> addr >= s.sec_addr && addr < s.sec_addr + s.sec_size)
    t.sections

let fde_for t name = List.find_opt (fun f -> f.fde_func = name) t.fdes
let dbg_for t name = List.find_opt (fun d -> d.dbg_func = name) t.dbgs
let lsda_for t name = List.find_opt (fun l -> l.lsda_func = name) t.lsdas

let text_size t =
  List.fold_left
    (fun acc s -> if s.sec_kind = Text then acc + s.sec_size else acc)
    0 t.sections

(* ---- serialization ---- *)

let magic = "BELF"

(* v4 added [build_id] after the entry point; v5 appended the structural
   fingerprint table after the dbg records.  v3 files (no build-id) and v4
   files (no fingerprints) are still readable and load with the missing
   fields empty. *)
let version = 5

let min_version = 3

let w_section b s =
  Buf.str b s.sec_name;
  Buf.u8 b (section_kind_code s.sec_kind);
  Buf.i64 b s.sec_addr;
  Buf.i64 b s.sec_size;
  Buf.bytes b s.sec_data

let w_symbol b s =
  Buf.str b s.sym_name;
  Buf.u8 b (sym_kind_code s.sym_kind);
  Buf.u8 b (match s.sym_bind with Local -> 0 | Global -> 1);
  Buf.str b s.sym_section;
  Buf.i64 b s.sym_value;
  Buf.i64 b s.sym_size

let w_reloc b x =
  Buf.str b x.rel_section;
  Buf.i64 b x.rel_offset;
  Buf.u8 b (reloc_kind_code x.rel_kind);
  Buf.str b x.rel_sym;
  Buf.i64 b x.rel_addend;
  Buf.u8 b x.rel_end;
  Buf.str b x.rel_pic_base

let w_cfi_op b = function
  | Cfi_establish -> Buf.u8 b 0
  | Cfi_def_locals n ->
      Buf.u8 b 1;
      Buf.i64 b n
  | Cfi_save (r, slot) ->
      Buf.u8 b 2;
      Buf.u8 b (Bolt_isa.Reg.to_int r);
      Buf.i64 b slot
  | Cfi_restore r ->
      Buf.u8 b 3;
      Buf.u8 b (Bolt_isa.Reg.to_int r)
  | Cfi_teardown -> Buf.u8 b 4
  | Cfi_set_state st ->
      Buf.u8 b 5;
      Buf.u8 b (if st.cfa_established then 1 else 0);
      Buf.i64 b st.cfa_locals;
      Buf.list b
        (fun b (r, s) ->
          Buf.u8 b (Bolt_isa.Reg.to_int r);
          Buf.i64 b s)
        st.cfa_saved

let w_fde b f =
  Buf.str b f.fde_func;
  Buf.i64 b f.fde_addr;
  Buf.i64 b f.fde_size;
  Buf.list b
    (fun b (off, op) ->
      Buf.i64 b off;
      w_cfi_op b op)
    f.fde_cfi

let w_dbg b d =
  Buf.str b d.dbg_func;
  Buf.i64 b d.dbg_addr;
  Buf.list b
    (fun b (off, file, line) ->
      Buf.i64 b off;
      Buf.str b file;
      Buf.i64 b line)
    d.dbg_entries

let w_lsda b l =
  Buf.str b l.lsda_func;
  Buf.i64 b l.lsda_fn_addr;
  Buf.list b
    (fun b e ->
      Buf.i64 b e.lsda_start;
      Buf.i64 b e.lsda_len;
      Buf.i64 b e.lsda_pad;
      Buf.i64 b e.lsda_action)
    l.lsda_entries

let to_string t =
  let b = Buf.writer () in
  Buf.add_string b magic;
  Buf.u8 b version;
  Buf.u8 b (match t.kind with Object -> 0 | Executable -> 1);
  Buf.i64 b t.entry;
  Buf.str b t.build_id;
  Buf.list b w_section t.sections;
  Buf.list b w_symbol t.symbols;
  Buf.list b w_reloc t.relocs;
  Buf.list b w_fde t.fdes;
  Buf.list b w_lsda t.lsdas;
  Buf.list b w_dbg t.dbgs;
  Buf.list b Fingerprint.write t.fingerprints;
  Buf.contents b

(* ---- decoding, generic over the read primitives ----

   The container grammar is written once; instantiating it over the
   batched cursor gives the production decoder, instantiating it over
   [Buf.Legacy] gives the pre-iocore per-byte decoder the parity tests
   and the iocore bench compare against. *)

module type Read_prim = sig
  val r_u8 : Buf.reader -> int
  val r_i64 : Buf.reader -> int
  val r_str : Buf.reader -> string
  val r_bytes : Buf.reader -> bytes
  val r_list : Buf.reader -> (Buf.reader -> 'a) -> 'a list
  val read_fingerprint : Buf.reader -> Fingerprint.func
end

module Decode (P : Read_prim) = struct
  open P

  let r_section r =
    let sec_name = r_str r in
    let sec_kind = section_kind_of_code (r_u8 r) in
    let sec_addr = r_i64 r in
    let sec_size = r_i64 r in
    let sec_data = r_bytes r in
    { sec_name; sec_kind; sec_addr; sec_size; sec_data }

  let r_symbol r =
    let sym_name = r_str r in
    let sym_kind = sym_kind_of_code (r_u8 r) in
    let sym_bind = if r_u8 r = 0 then Local else Global in
    let sym_section = r_str r in
    let sym_value = r_i64 r in
    let sym_size = r_i64 r in
    { sym_name; sym_kind; sym_bind; sym_section; sym_value; sym_size }

  let r_reloc r =
    let rel_section = r_str r in
    let rel_offset = r_i64 r in
    let rel_kind = reloc_kind_of_code (r_u8 r) in
    let rel_sym = r_str r in
    let rel_addend = r_i64 r in
    let rel_end = r_u8 r in
    let rel_pic_base = r_str r in
    { rel_section; rel_offset; rel_kind; rel_sym; rel_addend; rel_end; rel_pic_base }

  let r_cfi_op r =
    match r_u8 r with
    | 0 -> Cfi_establish
    | 1 -> Cfi_def_locals (r_i64 r)
    | 2 ->
        let reg = Bolt_isa.Reg.of_int (r_u8 r) in
        Cfi_save (reg, r_i64 r)
    | 3 -> Cfi_restore (Bolt_isa.Reg.of_int (r_u8 r))
    | 4 -> Cfi_teardown
    | 5 ->
        let cfa_established = r_u8 r = 1 in
        let cfa_locals = r_i64 r in
        let cfa_saved =
          r_list r (fun r ->
              let reg = Bolt_isa.Reg.of_int (r_u8 r) in
              (reg, r_i64 r))
        in
        Cfi_set_state { cfa_established; cfa_locals; cfa_saved }
    | n -> raise (Buf.Corrupt (Printf.sprintf "cfi op %d" n))

  let r_fde r =
    let fde_func = r_str r in
    let fde_addr = r_i64 r in
    let fde_size = r_i64 r in
    let fde_cfi =
      r_list r (fun r ->
          let off = r_i64 r in
          (off, r_cfi_op r))
    in
    { fde_func; fde_addr; fde_size; fde_cfi }

  let r_dbg r =
    let dbg_func = r_str r in
    let dbg_addr = r_i64 r in
    let dbg_entries =
      r_list r (fun r ->
          let off = r_i64 r in
          let file = r_str r in
          let line = r_i64 r in
          (off, file, line))
    in
    { dbg_func; dbg_addr; dbg_entries }

  let r_lsda r =
    let lsda_func = r_str r in
    let lsda_fn_addr = r_i64 r in
    let lsda_entries =
      r_list r (fun r ->
          let lsda_start = r_i64 r in
          let lsda_len = r_i64 r in
          let lsda_pad = r_i64 r in
          let lsda_action = r_i64 r in
          { lsda_start; lsda_len; lsda_pad; lsda_action })
    in
    { lsda_func; lsda_fn_addr; lsda_entries }

  let of_string data =
    try
      let r = Buf.reader data in
      Buf.need r 4;
      if String.sub data 0 4 <> magic then raise (Buf.Corrupt "bad magic");
      r.pos <- 4;
      let v = r_u8 r in
      if v < min_version || v > version then
        raise (Buf.Corrupt (Printf.sprintf "bad version %d" v));
      let kind = if r_u8 r = 0 then Object else Executable in
      let entry = r_i64 r in
      let build_id = if v >= 4 then r_str r else "" in
      let sections = r_list r r_section in
      let symbols = r_list r r_symbol in
      let relocs = r_list r r_reloc in
      let fdes = r_list r r_fde in
      let lsdas = r_list r r_lsda in
      let dbgs = r_list r r_dbg in
      let fingerprints =
        if v >= 5 then r_list r read_fingerprint else []
      in
      { kind; entry; build_id; sections; symbols; relocs; fdes; lsdas; dbgs;
        fingerprints }
    with
    | Buf.Corrupt _ as e -> raise e
    | exn ->
        (* corrupt input must always surface as [Corrupt], never as a stray
           [Invalid_argument]/[Out_of_memory] from the decoding internals *)
        raise (Buf.Corrupt (Printexc.to_string exn))
end

module Decode_new = Decode (struct
  let r_u8 = Buf.r_u8
  let r_i64 = Buf.r_i64
  let r_str = Buf.r_str
  let r_bytes = Buf.r_bytes
  let r_list = Buf.r_list
  let read_fingerprint = Fingerprint.read
end)

module Decode_legacy = Decode (struct
  let r_u8 = Buf.Legacy.r_u8
  let r_i64 = Buf.Legacy.r_i64
  let r_str = Buf.Legacy.r_str
  let r_bytes = Buf.Legacy.r_bytes
  let r_list = Buf.Legacy.r_list
  let read_fingerprint = Fingerprint.read_legacy
end)

let of_string = Decode_new.of_string
let of_string_legacy = Decode_legacy.of_string

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
