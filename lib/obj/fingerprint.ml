(* Structural fingerprints for stale-profile matching (the Stale Profile
   Matching recipe: hashes stamped at build time, matched at BOLT time).

   Each function in a linked binary gets a fingerprint derived only from
   its decoded instruction stream:

   - an opcode hash over the operand-insensitive opcode-kind sequence, so
     register renaming, immediate tweaks and displacement drift (the
     no-op recompile case) leave it unchanged;
   - a CFG-shape hash over the basic-block structure (per-block
     terminator class and relative successor positions), which survives
     straight-line edits inside blocks;
   - per-block offsets, sizes and the same two hashes, the raw material
     for block-level offset remapping;
   - the sorted set of direct-call targets, a call-graph-position signal
     for matching renamed functions.

   Fingerprints are stamped into the BELF container at link time and
   re-stamped after every rewrite, and they ride along inside fdata
   shards (copied from the profiled binary) so the optimizer can match a
   stale profile against a drifted binary without ever seeing the old
   binary itself.  Computation is deterministic: same bytes, same
   fingerprints. *)

open Types
module Insn = Bolt_isa.Insn
module Codec = Bolt_isa.Codec

type block = {
  bk_off : int; (* block start, function-relative *)
  bk_size : int;
  bk_opcode_hash : int;
  bk_shape_hash : int;
}

type func = {
  fp_func : string;
  fp_size : int;
  fp_opcode_hash : int; (* whole-function opcode-kind stream *)
  fp_cfg_hash : int; (* shape of the block graph *)
  fp_calls : string list; (* sorted unique direct-call targets *)
  fp_blocks : block list; (* in offset order *)
}

type t = func list

(* ---- hashing ---- *)

(* FNV-style mixing masked to 58 bits: stable across architectures, never
   overflows OCaml's 63-bit int, prints as a short hex token in fdata. *)
let hash_mask = 0x3FF_FFFF_FFFF_FFFF
let hash_empty = 0x1505

let mix h x = (h * 0x0100_0193) lxor (x land hash_mask) land hash_mask

let hash_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := mix !acc (Char.code c)) s;
  !acc

let to_hex h = Printf.sprintf "%x" h
let of_hex s = int_of_string_opt ("0x" ^ s)

(* Operand-insensitive opcode kind.  Registers, immediates, displacement
   widths and NOP sizes are all normalized away; the ALU operation and
   the branch condition are kept (an edit that changes them is a real
   semantic change, not drift). *)
let op_kind (i : Insn.t) =
  match i with
  | Insn.Halt -> 1
  | Insn.Nop _ -> 2
  | Insn.Ret | Insn.Repz_ret -> 3
  | Insn.Push _ -> 4
  | Insn.Pop _ -> 5
  | Insn.Mov_rr _ -> 6
  | Insn.Mov_ri _ -> 7
  | Insn.Load _ -> 8
  | Insn.Store _ -> 9
  | Insn.Load_abs _ -> 10
  | Insn.Store_abs _ -> 11
  | Insn.Lea _ -> 12
  | Insn.Lea_rel _ -> 13
  | Insn.Setcc _ -> 14
  | Insn.In_ _ -> 15
  | Insn.Out _ -> 16
  | Insn.Throw -> 17
  | Insn.Alu_rr (op, _, _) -> 32 + Insn.alu_code op
  | Insn.Alu_ri (op, _, _) -> 48 + Insn.alu_code op
  | Insn.Jmp _ -> 64
  | Insn.Jcc _ -> 65
  | Insn.Call _ -> 66
  | Insn.Call_ind _ -> 67
  | Insn.Call_mem _ -> 68
  | Insn.Jmp_ind _ -> 69
  | Insn.Jmp_mem _ -> 70

(* Terminator class of a block's last instruction, for the shape hash. *)
let term_class (i : Insn.t) =
  match Insn.classify i with
  | Insn.CF_jump -> 1
  | Insn.CF_cond -> 2
  | Insn.CF_ijump -> 3
  | Insn.CF_ret -> 4
  | Insn.CF_halt -> 5
  | Insn.CF_throw -> 6
  | _ -> 0 (* falls through *)

(* ---- per-function computation ---- *)

(* Decode [size] bytes at [base] linearly; stops cleanly at the first
   undecodable byte (non-simple functions still get a usable prefix). *)
let decode_stream data ~base ~size =
  let insns = ref [] in
  let pos = ref 0 in
  (try
     while !pos < size do
       let i, sz = Codec.decode data (base + !pos) in
       insns := (!pos, sz, i) :: !insns;
       pos := !pos + sz
     done
   with Codec.Decode_error _ | Invalid_argument _ -> ());
  Array.of_list (List.rev !insns)

let fingerprint_fn ~data ~base ~size ~name ~resolve : func =
  let insns = decode_stream data ~base ~size in
  let n = Array.length insns in
  let in_func o = o >= 0 && o < size in
  (* leaders: entry, intra-function branch targets, post-branch resume *)
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders 0 ();
  Array.iter
    (fun (off, sz, i) ->
      let next = off + sz in
      match i with
      | Insn.Jmp (Insn.Imm rel, _) | Insn.Jcc (_, Insn.Imm rel, _) ->
          if in_func (next + rel) then Hashtbl.replace leaders (next + rel) ();
          if in_func next then Hashtbl.replace leaders next ()
      | _ ->
          if Insn.is_terminator i && in_func next then
            Hashtbl.replace leaders next ())
    insns;
  let starts =
    Hashtbl.fold (fun o () acc -> o :: acc) leaders [] |> List.sort compare
  in
  let starts_arr = Array.of_list starts in
  let nb = Array.length starts_arr in
  let block_end k = if k + 1 < nb then starts_arr.(k + 1) else size in
  let index_of_start =
    let h = Hashtbl.create 16 in
    Array.iteri (fun k o -> Hashtbl.replace h o k) starts_arr;
    fun o -> Hashtbl.find_opt h o
  in
  let calls = ref [] in
  let func_oh = ref hash_empty in
  let blocks =
    Array.to_list
      (Array.mapi
         (fun k start ->
           let stop = block_end k in
           let oh = ref hash_empty in
           let last = ref None in
           Array.iter
             (fun (off, sz, i) ->
               if off >= start && off < stop then begin
                 oh := mix !oh (op_kind i);
                 func_oh := mix !func_oh (op_kind i);
                 last := Some (off, sz, i);
                 match i with
                 | Insn.Call (Insn.Imm rel) -> (
                     match resolve (off + sz + rel) with
                     | Some callee -> calls := callee :: !calls
                     | None -> ())
                 | _ -> ()
               end)
             insns;
           (* shape: terminator class + successor positions relative to
              this block, so inserting a block shifts only its
              neighbourhood *)
           let sh = ref hash_empty in
           (match !last with
           | None -> ()
           | Some (off, sz, i) ->
               sh := mix !sh (term_class i);
               let next = off + sz in
               let succ o =
                 match index_of_start o with
                 | Some j -> sh := mix !sh (j - k + 1024)
                 | None -> sh := mix !sh 2048 (* leaves the function *)
               in
               (match i with
               | Insn.Jmp (Insn.Imm rel, _) -> succ (next + rel)
               | Insn.Jcc (_, Insn.Imm rel, _) ->
                   succ (next + rel);
                   if in_func next then succ next
               | _ -> if (not (Insn.is_terminator i)) && in_func next then succ next));
           {
             bk_off = start;
             bk_size = stop - start;
             bk_opcode_hash = !oh;
             bk_shape_hash = !sh;
           })
         starts_arr)
  in
  let cfg =
    List.fold_left
      (fun h b -> mix h b.bk_shape_hash)
      (mix hash_empty nb) blocks
  in
  {
    fp_func = name;
    fp_size = size;
    fp_opcode_hash =
      (if n = 0 then
         (* undecodable from byte 0: fall back to a raw-byte hash so even
            opaque functions fingerprint deterministically *)
         hash_string hash_empty (Bytes.sub_string data base size)
       else !func_oh);
    fp_cfg_hash = cfg;
    fp_calls = List.sort_uniq compare !calls;
    fp_blocks = blocks;
  }

(* Fingerprint every function symbol that lies inside a text section.
   Only sections and symbols are consulted, so the computation commutes
   with build-id stamping. *)
let compute ~(sections : section list) ~(symbols : symbol list) : t =
  let texts = List.filter (fun s -> s.sec_kind = Text) sections in
  let funcs =
    List.filter (fun s -> s.sym_kind = Func && s.sym_size > 0) symbols
    |> List.sort (fun a b -> compare (a.sym_value, a.sym_name) (b.sym_value, b.sym_name))
  in
  (* address -> function name, for direct-call resolution *)
  let resolve_in sym addr =
    List.find_opt
      (fun f -> addr >= f.sym_value && addr < f.sym_value + f.sym_size)
      funcs
    |> Option.map (fun f -> f.sym_name)
    |> fun r -> ignore sym; r
  in
  List.filter_map
    (fun sym ->
      match
        List.find_opt
          (fun s ->
            sym.sym_value >= s.sec_addr
            && sym.sym_value + sym.sym_size <= s.sec_addr + s.sec_size)
          texts
      with
      | None -> None
      | Some sec ->
          let base = sym.sym_value - sec.sec_addr in
          if base < 0 || base + sym.sym_size > Bytes.length sec.sec_data then None
          else
            Some
              (fingerprint_fn ~data:sec.sec_data ~base ~size:sym.sym_size
                 ~name:sym.sym_name
                 ~resolve:(fun off -> resolve_in sym (sec.sec_addr + base + off))))
    funcs

(* ---- BELF serialization (v5 payload) ---- *)

let write b (f : func) =
  Buf.str b f.fp_func;
  Buf.i64 b f.fp_size;
  Buf.i64 b f.fp_opcode_hash;
  Buf.i64 b f.fp_cfg_hash;
  Buf.list b Buf.str f.fp_calls;
  Buf.list b
    (fun b blk ->
      Buf.i64 b blk.bk_off;
      Buf.i64 b blk.bk_size;
      Buf.i64 b blk.bk_opcode_hash;
      Buf.i64 b blk.bk_shape_hash)
    f.fp_blocks

let read r : func =
  let fp_func = Buf.r_str r in
  let fp_size = Buf.r_i64 r in
  let fp_opcode_hash = Buf.r_i64 r in
  let fp_cfg_hash = Buf.r_i64 r in
  let fp_calls = Buf.r_list r Buf.r_str in
  let fp_blocks =
    Buf.r_list r (fun r ->
        let bk_off = Buf.r_i64 r in
        let bk_size = Buf.r_i64 r in
        let bk_opcode_hash = Buf.r_i64 r in
        let bk_shape_hash = Buf.r_i64 r in
        { bk_off; bk_size; bk_opcode_hash; bk_shape_hash })
  in
  { fp_func; fp_size; fp_opcode_hash; fp_cfg_hash; fp_calls; fp_blocks }

(* Same decode on the pre-iocore per-byte primitives, for the legacy
   BELF load path measured by the iocore bench. *)
let read_legacy r : func =
  let module L = Buf.Legacy in
  let fp_func = L.r_str r in
  let fp_size = L.r_i64 r in
  let fp_opcode_hash = L.r_i64 r in
  let fp_cfg_hash = L.r_i64 r in
  let fp_calls = L.r_list r L.r_str in
  let fp_blocks =
    L.r_list r (fun r ->
        let bk_off = L.r_i64 r in
        let bk_size = L.r_i64 r in
        let bk_opcode_hash = L.r_i64 r in
        let bk_shape_hash = L.r_i64 r in
        { bk_off; bk_size; bk_opcode_hash; bk_shape_hash })
  in
  { fp_func; fp_size; fp_opcode_hash; fp_cfg_hash; fp_calls; fp_blocks }

let pp ppf (f : func) =
  Fmt.pf ppf "%-28s %6d bytes  op %-15s cfg %-15s %d block%s@." f.fp_func
    f.fp_size (to_hex f.fp_opcode_hash) (to_hex f.fp_cfg_hash)
    (List.length f.fp_blocks)
    (if List.length f.fp_blocks = 1 then "" else "s");
  List.iter
    (fun b ->
      Fmt.pf ppf "    +%-6x %5d bytes  op %-15s shape %s@." b.bk_off b.bk_size
        (to_hex b.bk_opcode_hash) (to_hex b.bk_shape_hash))
    f.fp_blocks;
  if f.fp_calls <> [] then
    Fmt.pf ppf "    calls: %s@." (String.concat ", " f.fp_calls)
