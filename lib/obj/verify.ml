(* BELF well-formedness verification, run before optimization.

   A post-link rewriter consumes binaries it did not produce; a container
   that parses is not yet a container that is safe to rewrite.  This pass
   checks the structural invariants the optimizer relies on and reports
   everything it finds: [Fatal] issues mean no rewrite can be attempted at
   all (the driver refuses the input), [Warning] issues are degradations
   the pipeline is expected to survive (the affected functions are skipped
   or quarantined). *)

open Types

type severity = Warning | Fatal

type issue = { v_severity : severity; v_what : string }

let issue sev fmt = Fmt.kstr (fun s -> { v_severity = sev; v_what = s }) fmt

let run (t : Objfile.t) : issue list =
  let issues = ref [] in
  let push i = issues := i :: !issues in
  (* sections *)
  if t.Objfile.kind = Objfile.Executable && Objfile.find_section t ".text" = None
  then push (issue Fatal "no .text section");
  List.iter
    (fun s ->
      if s.sec_size < 0 then
        push (issue Fatal "section %s: negative size %d" s.sec_name s.sec_size)
      else if s.sec_kind <> Bss && Bytes.length s.sec_data <> s.sec_size then
        push
          (issue Fatal "section %s: size field %d but %d data bytes" s.sec_name
             s.sec_size (Bytes.length s.sec_data)))
    t.sections;
  let rec overlaps = function
    | [] -> ()
    | s :: rest ->
        List.iter
          (fun s' ->
            if
              s.sec_size > 0 && s'.sec_size > 0
              && s.sec_addr < s'.sec_addr + s'.sec_size
              && s'.sec_addr < s.sec_addr + s.sec_size
            then
              push
                (issue Warning "sections %s and %s overlap" s.sec_name
                   s'.sec_name))
          rest;
        overlaps rest
  in
  overlaps t.sections;
  (* symbols *)
  List.iter
    (fun (sym : symbol) ->
      (* in an executable, a symbol that points outside its section lies
         about where its code or data lives — the rewriter would relocate
         on bad coordinates, so these are fatal (objects, whose symbols
         are still section-relative, only warn) *)
      let sev = if t.Objfile.kind = Objfile.Executable then Fatal else Warning in
      if sym.sym_section <> "" then
        match Objfile.find_section t sym.sym_section with
        | None ->
            push
              (issue sev "symbol %s: dangling section reference %s" sym.sym_name
                 sym.sym_section)
        | Some s ->
            if sym.sym_size < 0 then
              push
                (issue sev "symbol %s: negative size %d" sym.sym_name
                   sym.sym_size)
            else if
              t.Objfile.kind = Objfile.Executable
              && sym.sym_size > 0
              && (sym.sym_value < s.sec_addr
                 || sym.sym_value + sym.sym_size > s.sec_addr + s.sec_size)
            then
              push
                (issue Fatal "symbol %s: range [%#x,%#x) outside section %s"
                   sym.sym_name sym.sym_value
                   (sym.sym_value + sym.sym_size)
                   sym.sym_section))
    t.symbols;
  (* relocations *)
  let sym_names = Hashtbl.create 64 in
  List.iter (fun (s : symbol) -> Hashtbl.replace sym_names s.sym_name ()) t.symbols;
  List.iter
    (fun (r : reloc) ->
      match Objfile.find_section t r.rel_section with
      | None ->
          push
            (issue Warning "relocation against missing section %s" r.rel_section)
      | Some s ->
          let width = match r.rel_kind with Abs64 -> 8 | Rel8 -> 1 | _ -> 4 in
          if r.rel_offset < 0 || r.rel_offset + width > s.sec_size then
            push
              (issue Warning "relocation offset %#x out of range in %s"
                 r.rel_offset r.rel_section)
          else if r.rel_sym <> "" && not (Hashtbl.mem sym_names r.rel_sym) then
            push (issue Warning "relocation against undefined symbol %s" r.rel_sym))
    t.relocs;
  (* symbol-table coherence (executables): function symbols must tile
     .text — sorted by address, no overlaps and no unclaimed runs larger
     than alignment padding.  Function discovery trusts these symbols; a
     table that lies about code boundaries can make the rewriter drop or
     corrupt live code while the input binary still runs fine, so
     incoherence is fatal, not a degradation. *)
  let max_align_pad = 15 in
  if t.Objfile.kind = Objfile.Executable then
    List.iter
      (fun (sec : section) ->
        if sec.sec_kind = Text && sec.sec_size > 0 then begin
          let funcs =
            List.filter
              (fun (s : symbol) ->
                s.sym_kind = Func && s.sym_section = sec.sec_name
                && s.sym_size > 0)
              t.symbols
            |> List.sort (fun (a : symbol) b -> compare a.sym_value b.sym_value)
          in
          if funcs = [] then begin
            if sec.sec_name = ".text" then
              push (issue Fatal ".text has no function symbols")
          end
          else begin
            (* a gap is fine when it is alignment-sized or holds nothing
               but single-byte-nop filler (0x02, what the toolchain pads
               with); real instructions in unclaimed space mean a symbol
               is hiding live code *)
            let nop_gap lo hi =
              hi - lo <= max_align_pad
              ||
              let ok = ref true in
              for a = max lo sec.sec_addr to min hi (sec.sec_addr + sec.sec_size) - 1 do
                if Bytes.get sec.sec_data (a - sec.sec_addr) <> '\x02' then
                  ok := false
              done;
              !ok
            in
            let pos = ref sec.sec_addr in
            let prev = ref ("start of " ^ sec.sec_name) in
            List.iter
              (fun (s : symbol) ->
                if s.sym_value < !pos then begin
                  (* fully inside already-claimed code: an ICF alias or a
                     nested symbol, still coherent.  A range that starts
                     inside one function and spills past it is not. *)
                  if s.sym_value + s.sym_size > !pos then
                    push
                      (issue Fatal
                         "symbol table incoherent: %s [%#x,%#x) overlaps %s"
                         s.sym_name s.sym_value
                         (s.sym_value + s.sym_size)
                         !prev)
                end
                else if not (nop_gap !pos s.sym_value) then
                  push
                    (issue Fatal
                       "symbol table incoherent: %d unclaimed code bytes \
                        between %s and %s"
                       (s.sym_value - !pos) !prev s.sym_name);
                if s.sym_value + s.sym_size > !pos then
                  pos := s.sym_value + s.sym_size;
                prev := s.sym_name)
              funcs;
            if not (nop_gap !pos (sec.sec_addr + sec.sec_size)) then
              push
                (issue Fatal
                   "symbol table incoherent: %d unclaimed code bytes after %s"
                   (sec.sec_addr + sec.sec_size - !pos)
                   !prev)
          end
        end)
      t.sections;
  (* relocation consistency (executables): the linker has already applied
     every surviving relocation, so the encoded field must equal the value
     recomputed from the symbol table.  A mismatch means the metadata lies
     about the code and any relocation-mode rewrite would miscompile. *)
  (if t.Objfile.kind = Objfile.Executable then
     let sym_value = Hashtbl.create 64 in
     let ambiguous = Hashtbl.create 4 in
     List.iter
       (fun (s : symbol) ->
         match Hashtbl.find_opt sym_value s.sym_name with
         | Some v when v <> s.sym_value -> Hashtbl.replace ambiguous s.sym_name ()
         | _ -> Hashtbl.replace sym_value s.sym_name s.sym_value)
       t.symbols;
     List.iter
       (fun (r : reloc) ->
         match Objfile.find_section t r.rel_section with
         | None -> () (* reported above *)
         | Some s when s.sec_kind = Bss -> ()
         | Some s -> (
             let width = match r.rel_kind with Abs64 -> 8 | Rel8 -> 1 | _ -> 4 in
             if
               r.rel_offset >= 0
               && r.rel_offset + width <= Bytes.length s.sec_data
               && (not (Hashtbl.mem ambiguous r.rel_sym))
             then
               match Hashtbl.find_opt sym_value r.rel_sym with
               | None -> () (* undefined: reported above *)
               | Some sv ->
                   let expect =
                     match r.rel_kind with
                     | Abs64 | Abs32 -> sv + r.rel_addend
                     | Rel32 | Rel8 ->
                         sv + r.rel_addend
                         - (s.sec_addr + r.rel_offset + r.rel_end)
                   in
                   let stored =
                     match r.rel_kind with
                     | Rel8 ->
                         let v = Char.code (Bytes.get s.sec_data r.rel_offset) in
                         if v >= 128 then v - 256 else v
                     | Abs32 | Rel32 ->
                         Int32.to_int (Bytes.get_int32_le s.sec_data r.rel_offset)
                     | Abs64 ->
                         Int64.to_int (Bytes.get_int64_le s.sec_data r.rel_offset)
                   in
                   let matches =
                     match r.rel_kind with
                     | Abs64 -> stored = expect
                     | Abs32 | Rel32 ->
                         stored land 0xffffffff = expect land 0xffffffff
                     | Rel8 -> stored land 0xff = expect land 0xff
                   in
                   if not matches then
                     push
                       (issue Fatal
                          "relocation %s+%#x (%s): encoded value %#x does not \
                           match symbol table (%#x) — stale or corrupt metadata"
                          r.rel_section r.rel_offset r.rel_sym stored expect)))
       t.relocs);
  (* frame info and exception tables *)
  let func_syms = Hashtbl.create 64 in
  List.iter
    (fun (s : symbol) ->
      if s.sym_kind = Func then Hashtbl.replace func_syms s.sym_name s)
    t.symbols;
  (match Objfile.find_section t ".text" with
  | Some text ->
      List.iter
        (fun (f : fde) ->
          if
            t.Objfile.kind = Objfile.Executable
            && f.fde_size > 0
            && (f.fde_addr < text.sec_addr
               || f.fde_addr + f.fde_size > text.sec_addr + text.sec_size)
          then
            push
              (issue Warning "frame descriptor %s: range [%#x,%#x) outside .text"
                 f.fde_func f.fde_addr (f.fde_addr + f.fde_size));
          (* a frame descriptor that disagrees with the symbol table would
             make the rewriter regenerate wrong unwind info: fatal *)
          if t.Objfile.kind = Objfile.Executable && f.fde_func <> "" then
            match Hashtbl.find_opt func_syms f.fde_func with
            | Some s
              when f.fde_addr <> s.sym_value
                   || (f.fde_size > 0 && f.fde_size <> s.sym_size) ->
                push
                  (issue Fatal
                     "frame descriptor %s [%#x,%#x) disagrees with symbol \
                      table [%#x,%#x)"
                     f.fde_func f.fde_addr (f.fde_addr + f.fde_size)
                     s.sym_value (s.sym_value + s.sym_size))
            | _ -> ())
        t.fdes;
      if
        t.Objfile.kind = Objfile.Executable && t.entry <> 0
        && Objfile.section_at t t.entry = None
      then push (issue Warning "entry point %#x outside every section" t.entry)
  | None -> ());
  List.iter
    (fun (l : lsda) ->
      List.iter
        (fun e ->
          if e.lsda_start < 0 || e.lsda_len < 0 || e.lsda_pad < 0 then
            push (issue Warning "exception table %s: negative range" l.lsda_func))
        l.lsda_entries;
      if t.Objfile.kind = Objfile.Executable then
        match Hashtbl.find_opt func_syms l.lsda_func with
        | Some s when l.lsda_fn_addr <> s.sym_value ->
            push
              (issue Fatal
                 "exception table %s anchored at %#x but symbol table says %#x"
                 l.lsda_func l.lsda_fn_addr s.sym_value)
        | _ -> ())
    t.lsdas;
  List.rev !issues

let fatal issues = List.filter (fun i -> i.v_severity = Fatal) issues

let pp_issue ppf i =
  Fmt.pf ppf "[%s] %s"
    (match i.v_severity with Warning -> "warning" | Fatal -> "fatal")
    i.v_what
