(* The shared zero-copy I/O core used by the BELF serializer, the profile
   file formats and the re-encode path.

   Integers are little-endian; strings are length-prefixed.  Three layers:

   - [slice]: an immutable window into a backing string.  Sub-slicing is
     bounds-checked and never copies; bytes are materialized only when a
     consumer asks for them ([slice_to_string] / [slice_to_bytes]).
   - [reader]: a bounds-checked cursor over a slice.  Multi-byte fields
     are read batched ([String.get_int64_le] / [get_int32_le]), not one
     byte at a time.  Reading past the window raises [Corrupt].
   - [writer]: an arena-style buffer over [Bytes] with amortized-doubling
     growth, [reserve]/[patch] for back-patched headers, and [append] so
     independently-filled arenas join by one block copy.

   [Legacy] keeps the original per-byte implementations; the iocore bench
   and the parity tests run both paths side by side. *)

exception Corrupt of string

(* ---- slices ---- *)

type slice = { sl_base : string; sl_off : int; sl_len : int }

let slice_of_string s = { sl_base = s; sl_off = 0; sl_len = String.length s }

let slice_len sl = sl.sl_len

let sub_slice sl pos len =
  if pos < 0 || len < 0 || pos + len > sl.sl_len then
    raise (Corrupt "slice out of bounds");
  { sl_base = sl.sl_base; sl_off = sl.sl_off + pos; sl_len = len }

let slice_get sl i =
  if i < 0 || i >= sl.sl_len then raise (Corrupt "slice index out of bounds");
  String.unsafe_get sl.sl_base (sl.sl_off + i)

let slice_to_string sl = String.sub sl.sl_base sl.sl_off sl.sl_len

let slice_to_bytes sl =
  let b = Bytes.create sl.sl_len in
  Bytes.blit_string sl.sl_base sl.sl_off b 0 sl.sl_len;
  b

(* ---- reader: a cursor over a slice ---- *)

type reader = {
  data : string;
  limit : int;
  mutable pos : int;
  (* two-slot memo of recently materialized strings: containers repeat
     short strings heavily (every symbol names its section, every
     line-table entry names its file — real DWARF uses file indices for
     the same reason), and the slots dedup them without a table.  Two
     slots, not one, so an alternating pattern (name, ".text", name,
     ".text", ...) still hits. *)
  mutable memo0 : string;
  mutable memo1 : string;
}

let reader data =
  { data; limit = String.length data; pos = 0; memo0 = ""; memo1 = "" }

let reader_of_slice sl =
  {
    data = sl.sl_base;
    limit = sl.sl_off + sl.sl_len;
    pos = sl.sl_off;
    memo0 = "";
    memo1 = "";
  }

let need r n = if r.pos + n > r.limit then raise (Corrupt "truncated input")

let r_rem r = r.limit - r.pos

let r_skip r n =
  need r n;
  r.pos <- r.pos + n

let r_u8 r =
  need r 1;
  let v = Char.code (String.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

(* Unsigned 32-bit value as a non-negative int (the host int is 63-bit). *)
let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFF_FFFF in
  r.pos <- r.pos + 4;
  v

(* 64-bit field truncated to the host int, exactly like the legacy
   byte-loop ([Int64.to_int] drops the top bit). *)
let r_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

(* Length-prefixed payload as a slice: no copy, just a window. *)
let r_slice r =
  let n = r_u32 r in
  need r n;
  let sl = { sl_base = r.data; sl_off = r.pos; sl_len = n } in
  r.pos <- r.pos + n;
  sl

(* Strings materialize here — the symbol-table boundary.  A memo hit
   returns the already-materialized copy, so a container with a million
   ".text" / "file.c" repeats holds one string, not a million. *)
let r_str r =
  let n = r_u32 r in
  need r n;
  let span_eq s =
    String.length s = n
    &&
    let i = ref 0 in
    while
      !i < n && String.unsafe_get s !i = String.unsafe_get r.data (r.pos + !i)
    do
      incr i
    done;
    !i = n
  in
  let s =
    if span_eq r.memo0 then r.memo0
    else if span_eq r.memo1 then begin
      let s = r.memo1 in
      r.memo1 <- r.memo0;
      r.memo0 <- s;
      s
    end
    else begin
      let s = String.sub r.data r.pos n in
      r.memo1 <- r.memo0;
      r.memo0 <- s;
      s
    end
  in
  r.pos <- r.pos + n;
  s

let r_bytes r =
  let n = r_u32 r in
  need r n;
  let b = Bytes.create n in
  Bytes.blit_string r.data r.pos b 0 n;
  r.pos <- r.pos + n;
  b

let r_list r f =
  let n = r_u32 r in
  List.init n (fun _ -> f r)

(* ---- writer: an arena with reserve/patch ---- *)

type writer = { mutable buf : Bytes.t; mutable len : int }

let writer ?(capacity = 4096) () = { buf = Bytes.create (max 16 capacity); len = 0 }

let length w = w.len

let ensure w n =
  let need_cap = w.len + n in
  if need_cap > Bytes.length w.buf then begin
    let cap = ref (2 * Bytes.length w.buf) in
    while !cap < need_cap do
      cap := 2 * !cap
    done;
    let b = Bytes.create !cap in
    Bytes.blit w.buf 0 b 0 w.len;
    w.buf <- b
  end

let u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let u32 w v =
  ensure w 4;
  Bytes.set_int32_le w.buf w.len (Int32.of_int v);
  w.len <- w.len + 4

let i64 w v =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len (Int64.of_int v);
  w.len <- w.len + 8

let add_char w c =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len c;
  w.len <- w.len + 1

let add_string w s =
  let n = String.length s in
  ensure w n;
  Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

let add_subbytes w b off n =
  ensure w n;
  Bytes.blit b off w.buf w.len n;
  w.len <- w.len + n

let str w s =
  u32 w (String.length s);
  add_string w s

let bytes w by =
  u32 w (Bytes.length by);
  add_subbytes w by 0 (Bytes.length by)

let list w f xs =
  u32 w (List.length xs);
  List.iter (f w) xs

(* Reserve [n] zeroed bytes and return their offset for a later patch —
   the length-prefix idiom without a second serialization pass. *)
let reserve w n =
  ensure w n;
  let off = w.len in
  Bytes.fill w.buf off n '\x00';
  w.len <- w.len + n;
  off

let patch_u8 w off v = Bytes.set w.buf off (Char.chr (v land 0xff))
let patch_u32 w off v = Bytes.set_int32_le w.buf off (Int32.of_int v)
let patch_i64 w off v = Bytes.set_int64_le w.buf off (Int64.of_int v)

(* Join another arena's contents with one block copy. *)
let append w src = add_subbytes w src.buf 0 src.len

(* Text emitters for the line-oriented formats (fdata): hand-rolled
   decimal/hex so a million-record dump does not go through Printf. *)

let rec dec_digits v = if v < 10 then 1 else 1 + dec_digits (v / 10)

let dec w v =
  if v < 0 then
    if v = min_int then add_string w (string_of_int v)
    else begin
      u8 w (Char.code '-');
      let v = -v in
      let n = dec_digits v in
      ensure w n;
      let base = w.len in
      w.len <- w.len + n;
      let v = ref v in
      for i = n - 1 downto 0 do
        Bytes.unsafe_set w.buf (base + i) (Char.unsafe_chr (48 + (!v mod 10)));
        v := !v / 10
      done
    end
  else begin
    let n = dec_digits v in
    ensure w n;
    let base = w.len in
    w.len <- w.len + n;
    let v = ref v in
    for i = n - 1 downto 0 do
      Bytes.unsafe_set w.buf (base + i) (Char.unsafe_chr (48 + (!v mod 10)));
      v := !v / 10
    done
  end

(* Counts are int64; everything below [max_int] takes the int fast path. *)
let dec64 w (v : int64) =
  if v >= 0L && v <= Int64.of_int max_int then dec w (Int64.to_int v)
  else add_string w (Int64.to_string v)

let hex_digit = "0123456789abcdef"

(* Lowercase hex of a non-negative int, Printf "%x" compatible. *)
let hex w v =
  if v < 0 then add_string w (Printf.sprintf "%x" v)
  else begin
    let n = ref 1 and x = ref (v lsr 4) in
    while !x <> 0 do
      incr n;
      x := !x lsr 4
    done;
    let n = !n in
    ensure w n;
    let base = w.len in
    w.len <- w.len + n;
    let v = ref v in
    for i = n - 1 downto 0 do
      Bytes.unsafe_set w.buf (base + i) (String.unsafe_get hex_digit (!v land 0xf));
      v := !v lsr 4
    done
  end

let contents w = Bytes.sub_string w.buf 0 w.len

let to_bytes w = Bytes.sub w.buf 0 w.len

(* Write [contents w] into [dst] at [off] without the intermediate
   string. *)
let blit w dst off = Bytes.blit w.buf 0 dst off w.len

(* ---- the original per-byte implementations ---- *)

(* Kept verbatim (modulo the reader's [limit] field replacing
   [String.length]) as the baseline the iocore bench measures against and
   the oracle the parity tests compare with. *)
module Legacy = struct
  type lwriter = Buffer.t

  let writer () = Buffer.create 4096

  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    u8 b v;
    u8 b (v lsr 8);
    u8 b (v lsr 16);
    u8 b (v lsr 24)

  let i64 b v =
    let v64 = Int64.of_int v in
    for i = 0 to 7 do
      u8 b (Int64.to_int (Int64.shift_right_logical v64 (8 * i)) land 0xff)
    done

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let bytes b by =
    u32 b (Bytes.length by);
    Buffer.add_bytes b by

  let list b f xs =
    u32 b (List.length xs);
    List.iter (f b) xs

  let contents = Buffer.contents

  let r_u8 r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let r_u32 r =
    let a = r_u8 r in
    let b = r_u8 r in
    let c = r_u8 r in
    let d = r_u8 r in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let r_i64 r =
    let v = ref 0L in
    need r 8;
    for i = 7 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code r.data.[r.pos + i]))
    done;
    r.pos <- r.pos + 8;
    Int64.to_int !v

  let r_str r =
    let n = r_u32 r in
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let r_bytes r =
    let n = r_u32 r in
    need r n;
    let b = Bytes.of_string (String.sub r.data r.pos n) in
    r.pos <- r.pos + n;
    b

  let r_list r f =
    let n = r_u32 r in
    List.init n (fun _ -> f r)
end
