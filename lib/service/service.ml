(* Continuous-optimization service: the loop BOLT runs as in a data
   center (§7) — shards trickle in from thousands of hosts, per-host
   state accumulates under a memory bound, and when the merged profile's
   quality crosses the configured thresholds (or a max-staleness timer
   fires) the target binary is re-optimized and the rollout tracked.

   The loop is event-driven and entirely deterministic:

   - time is logical: every event carries its arrival second and the
     service clock only ever advances to the max event time seen — no
     wall-clock read happens inside [step], so a scripted tape replays
     byte-identically (and the CLI can pin the [Obs] clock with
     --epoch for reproducible manifests);
   - each step's events are sorted into a canonical order before
     ingest, so the arrival order *within* a step cannot matter, and
     the sketch, merge and rewrite layers are themselves
     order/[jobs]-independent — the e2e suite holds final binary,
     profile and state bytes equal across shuffled tapes and -j;
   - the sketch ([Sketch]) bounds memory: top-K functions per host
     under a global byte budget, evictions counted and their event
     mass tracked.

   Assessment reuses the fleet layer unchanged: [Merge.recover_stale_each]
   re-keys stale shards against the current target (stale recovery is
   always armed when the target carries fingerprints), [Merge.merge]
   folds the retained per-host profiles, [Monitor.observe] turns the
   round into a health tick, and a trigger decision is taken on the
   tick's [Quality.assess] output. *)

module Fdata = Bolt_profile.Fdata
module Json = Bolt_obs.Json
module Obs = Bolt_obs.Obs
module Merge = Bolt_fleet.Merge
module Monitor = Bolt_fleet.Monitor
module Quality = Bolt_fleet.Quality
module Stale_match = Bolt_profile.Stale_match
module P = Bolt_pipeline.Pipeline

(* ---- events ---- *)

(* One shard arrival: at [ev_time] (seconds on the fleet's logical
   clock), [ev_host] delivered the fdata text [ev_text]. *)
type event = { ev_time : int; ev_host : string; ev_text : string }

(* Canonical event order: time, then host, then content — ingest order
   inside a step is a function of the events, never of the tape. *)
let compare_event a b =
  compare (a.ev_time, a.ev_host, a.ev_text) (b.ev_time, b.ev_host, b.ev_text)

(* ---- configuration ---- *)

type trigger = {
  tr_min_hosts : int; (* no trigger before this many hosts reported *)
  tr_min_coverage_pct : float; (* quality gates for a re-optimization: *)
  tr_max_staleness_pct : float; (*   the merged profile must be this good *)
  tr_min_recovery_rate : float; (*   before it is worth rewriting on *)
  tr_max_interval : int; (* max-staleness timer: re-optimize at least this
                            often (seconds) while traffic arrives; 0 = off *)
  tr_cooldown_hosts : int; (* fresh host reports required between triggers *)
}

let default_trigger =
  {
    tr_min_hosts = 4;
    tr_min_coverage_pct = 25.0;
    tr_max_staleness_pct = 60.0;
    tr_min_recovery_rate = 0.3;
    tr_max_interval = 0;
    tr_cooldown_hosts = 1;
  }

type config = {
  c_topk : int; (* sketch: max function entries per host *)
  c_budget : int; (* sketch: global byte budget *)
  c_trigger : trigger;
  c_jobs : int; (* worker domains for merge + rewrite *)
  c_decay : float option; (* age decay for the merge *)
  c_thresholds : Monitor.thresholds;
}

let default_config =
  {
    c_topk = 512;
    c_budget = 64 * 1024 * 1024;
    c_trigger = default_trigger;
    c_jobs = 1;
    c_decay = None;
    c_thresholds = Monitor.default_thresholds;
  }

(* ---- state ---- *)

(* One fired trigger, newest first in [reopts]. *)
type reopt = {
  ro_step : int;
  ro_time : int;
  ro_reason : string; (* "quality" | "max_interval" *)
  ro_build_id_before : string;
  ro_build_id_after : string; (* = before when no target binary is loaded *)
  ro_profile : Fdata.t; (* the merged profile the rewrite consumed *)
}

type t = {
  cfg : config;
  obs : Obs.t;
  sketch : Sketch.t;
  monitor : Monitor.t;
  start_time : int;
  mutable target : P.build option; (* None: track/trigger without rewriting *)
  mutable expected_build_id : string;
  mutable fingerprints : Bolt_obj.Fingerprint.t;
  mutable now : int; (* logical clock: max event time seen *)
  mutable steps : int;
  mutable events_seen : int;
  mutable lines_in : int;
  mutable last_reopt : int; (* timer base: start_time until first trigger *)
  mutable fresh_hosts : int; (* shard arrivals since the last trigger *)
  mutable first_trigger_step : int option; (* trigger latency in ticks *)
  mutable reopts : reopt list;
  mutable last_quality : Quality.report option;
  mutable last_merged : Fdata.t option;
}

let create ?obs ?(config = default_config) ?target ?expect_build_id
    ~start_time () =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  let expected, fps =
    match target with
    | Some b -> (P.build_id b, P.fingerprints b)
    | None -> (Option.value ~default:"" expect_build_id, [])
  in
  {
    cfg = config;
    obs;
    sketch = Sketch.create ~obs ~topk:config.c_topk ~budget:config.c_budget ();
    monitor = Monitor.create ~thresholds:config.c_thresholds ();
    start_time;
    target;
    expected_build_id = expected;
    fingerprints = fps;
    now = start_time;
    steps = 0;
    events_seen = 0;
    lines_in = 0;
    last_reopt = start_time;
    fresh_hosts = 0;
    first_trigger_step = None;
    reopts = [];
    last_quality = None;
    last_merged = None;
  }

let target t = t.target
let expected_build_id t = t.expected_build_id
let reopts t = List.rev t.reopts
let steps t = t.steps
let monitor t = t.monitor
let sketch t = t.sketch
let last_quality t = t.last_quality
let last_merged t = t.last_merged
let first_trigger_step t = t.first_trigger_step

let count_lines text =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) text;
  !n

let ingest t (ev : event) =
  let ig = Sketch.ingest t.sketch ~host:ev.ev_host ev.ev_text in
  t.events_seen <- t.events_seen + 1;
  t.lines_in <- t.lines_in + count_lines ev.ev_text;
  t.fresh_hosts <- t.fresh_hosts + 1;
  if ev.ev_time > t.now then t.now <- ev.ev_time;
  Obs.incr t.obs "service.shards";
  Obs.incr t.obs ~by:ig.Sketch.ig_records "service.records";
  if ig.Sketch.ig_warnings > 0 then
    Obs.incr t.obs ~by:ig.Sketch.ig_warnings "service.malformed_lines"

(* ---- the step: ingest a batch, assess, maybe re-optimize ---- *)

type step_report = {
  sr_step : int;
  sr_time : int;
  sr_events : int;
  sr_hosts : int; (* hosts tracked after this step *)
  sr_quality : Quality.report option;
  sr_trigger : string option; (* reason, when this step triggered *)
  sr_reoptimized : bool; (* a target was actually rewritten *)
}

let assess t : Quality.report option =
  let shards = Sketch.to_shards t.sketch in
  if shards = [] then None
  else begin
    (* staleness/provenance are judged on the shards as retained;
       the merge consumes their recovered form *)
    let recovered, recovery =
      Merge.recover_stale_each ~fingerprints:t.fingerprints
        ~build_id:t.expected_build_id shards
    in
    let opts =
      {
        Merge.weights = [];
        decay = t.cfg.c_decay;
        expect_build_id =
          (if t.expected_build_id = "" then None else Some t.expected_build_id);
        jobs = t.cfg.c_jobs;
      }
    in
    let merged = Merge.merge ~obs:t.obs ~opts recovered in
    let tick =
      Monitor.observe ~obs:t.obs t.monitor
        ~expected_build_id:t.expected_build_id ~recovery shards ~merged
    in
    t.last_merged <- Some merged;
    let q = tick.Monitor.tk_quality in
    t.last_quality <- Some q;
    Obs.set t.obs "service.coverage_pct" q.Quality.q_coverage_pct;
    Obs.set t.obs "service.staleness_pct" q.Quality.q_staleness_pct;
    Some q
  end

let trigger_reason t (q : Quality.report) : string option =
  let tr = t.cfg.c_trigger in
  let hosts = Sketch.hosts t.sketch in
  let recovery_ok =
    match q.Quality.q_recovery with
    | None -> true
    | Some st -> Stale_match.recovery_rate st >= tr.tr_min_recovery_rate
  in
  let quality_ok =
    hosts >= tr.tr_min_hosts
    && q.Quality.q_coverage_pct >= tr.tr_min_coverage_pct
    && q.Quality.q_staleness_pct <= tr.tr_max_staleness_pct
    && recovery_ok
  in
  if quality_ok && t.fresh_hosts >= tr.tr_cooldown_hosts then Some "quality"
  else if
    tr.tr_max_interval > 0
    && t.now - t.last_reopt >= tr.tr_max_interval
    && t.fresh_hosts > 0
  then Some "max_interval"
  else None

let reoptimize t ~reason =
  if t.first_trigger_step = None then t.first_trigger_step <- Some t.steps;
  Obs.incr t.obs "service.triggers";
  Obs.event t.obs "service.trigger"
    ~attrs:
      [
        ("reason", Json.String reason);
        ("step", Json.Int t.steps);
        ("time", Json.Int t.now);
      ];
  let before = t.expected_build_id in
  let merged =
    match t.last_merged with Some m -> m | None -> assert false
  in
  (match t.target with
  | None -> () (* tracking-only mode: record the trigger, rewrite nothing *)
  | Some b ->
      let b', _report = P.bolt ~obs:t.obs ~jobs:t.cfg.c_jobs b merged in
      t.target <- Some b';
      t.expected_build_id <- P.build_id b';
      t.fingerprints <- P.fingerprints b';
      Obs.incr t.obs "service.reopts";
      Obs.event t.obs "service.reoptimize"
        ~attrs:
          [
            ("build_id_before", Json.String before);
            ("build_id_after", Json.String t.expected_build_id);
          ]);
  t.last_reopt <- t.now;
  t.fresh_hosts <- 0;
  t.reopts <-
    {
      ro_step = t.steps;
      ro_time = t.now;
      ro_reason = reason;
      ro_build_id_before = before;
      ro_build_id_after = t.expected_build_id;
      ro_profile = merged;
    }
    :: t.reopts

(* One service tick: ingest [events] (any order — they are canonicalized
   here), advance the logical clock, reassess quality, and fire the
   trigger policy. *)
let step ?now t (events : event list) : step_report =
  Obs.span t.obs "service.step" (fun () ->
      let events = List.sort compare_event events in
      List.iter (ingest t) events;
      (match now with Some n when n > t.now -> t.now <- n | _ -> ());
      t.steps <- t.steps + 1;
      let q = assess t in
      let trigger =
        match q with None -> None | Some q -> trigger_reason t q
      in
      let reoptimized =
        match trigger with
        | Some reason ->
            reoptimize t ~reason;
            t.target <> None
        | None -> false
      in
      Obs.incr t.obs "service.steps";
      {
        sr_step = t.steps;
        sr_time = t.now;
        sr_events = List.length events;
        sr_hosts = Sketch.hosts t.sketch;
        sr_quality = q;
        sr_trigger = trigger;
        sr_reoptimized = reoptimized;
      })

(* Replay a whole tape: events sharing an arrival time form one step
   (the scripted analog of a spool poll interval). *)
let run t (tape : event list) : step_report list =
  let sorted = List.sort compare_event tape in
  let groups =
    List.fold_left
      (fun acc ev ->
        match acc with
        | (time, evs) :: rest when time = ev.ev_time ->
            (time, ev :: evs) :: rest
        | _ -> (ev.ev_time, [ ev ]) :: acc)
      [] sorted
  in
  (* [groups] is newest-first: restore tape order before stepping, so
     the logical clock advances monotonically through the replay *)
  List.map (fun (_, evs) -> step t (List.rev evs)) (List.rev groups)

(* ---- tape and spool I/O ---- *)

type skip = { sk_path : string; sk_reason : string }

let pp_skip ppf s = Fmt.pf ppf "skipped %s: %s" s.sk_path s.sk_reason

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* A scripted tape: one "<time> <host> <path>" triple per line,
   '#' comments and blank lines ignored.  Unreadable shard files are
   skipped with a reason, mirroring [Merge.load_shards]. *)
let load_tape path : event list * skip list =
  let skips = ref [] in
  let events = ref [] in
  let text = read_file path in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ time; host; shard ] -> (
            match int_of_string_opt time with
            | None ->
                skips :=
                  {
                    sk_path = Printf.sprintf "%s:%d" path (lineno + 1);
                    sk_reason = Printf.sprintf "bad arrival time %S" time;
                  }
                  :: !skips
            | Some time -> (
                match read_file shard with
                | text ->
                    events :=
                      { ev_time = time; ev_host = host; ev_text = text }
                      :: !events
                | exception Sys_error msg ->
                    skips := { sk_path = shard; sk_reason = msg } :: !skips))
        | _ ->
            skips :=
              {
                sk_path = Printf.sprintf "%s:%d" path (lineno + 1);
                sk_reason = "want: <time> <host> <shard-path>";
              }
              :: !skips)
    (String.split_on_char '\n' text);
  (List.rev !events, List.rev !skips)

(* One spool-directory poll: every regular file is an arriving shard;
   the host is the shard header's claim (file name fallback) and the
   arrival time the header timestamp (else [default_time]).  Consuming
   — moving or deleting the files — is the caller's business. *)
let spool_scan ?(default_time = 0) dir : (string * event) list * skip list =
  let skips = ref [] in
  let entries =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun name ->
           let path = Filename.concat dir name in
           if Sys.is_directory path then None
           else
             match read_file path with
             | text ->
                 let prof, _ = Fdata.scan text in
                 let hd =
                   Option.value ~default:Fdata.no_header prof.Fdata.header
                 in
                 let host =
                   if hd.Fdata.hd_host <> "" then hd.Fdata.hd_host else name
                 in
                 let time =
                   if hd.Fdata.hd_timestamp > 0 then hd.Fdata.hd_timestamp
                   else default_time
                 in
                 Some (path, { ev_time = time; ev_host = host; ev_text = text })
             | exception Sys_error msg ->
                 skips := { sk_path = path; sk_reason = msg } :: !skips;
                 None)
  in
  (entries, List.rev !skips)

(* ---- rendering and manifests ---- *)

let short_id s = if String.length s > 10 then String.sub s 0 10 else s

let pp ppf (t : t) =
  Fmt.pf ppf "continuous optimization service: %d step(s), %d host(s), t=%d@."
    t.steps (Sketch.hosts t.sketch) t.now;
  Fmt.pf ppf "  target build   %s%s@."
    (match t.expected_build_id with "" -> "<none>" | id -> short_id id)
    (match t.target with None -> " (tracking only)" | Some _ -> "");
  Fmt.pf ppf "  ingest         %d shard(s), %d line(s), %d malformed@."
    t.events_seen t.lines_in (Sketch.malformed t.sketch);
  Fmt.pf ppf "  sketch         %d / %d bytes (peak %d), %d func(s), %d eviction(s)@."
    (Sketch.occupancy t.sketch) (Sketch.budget t.sketch) (Sketch.peak t.sketch)
    (Sketch.funcs t.sketch) (Sketch.evictions t.sketch);
  (match t.last_quality with
  | None -> ()
  | Some q ->
      Fmt.pf ppf "  quality        coverage %.1f%%  staleness %.1f%%  recovery %s@."
        q.Quality.q_coverage_pct q.Quality.q_staleness_pct
        (match q.Quality.q_recovery with
        | Some st -> Printf.sprintf "%.2f" (Stale_match.recovery_rate st)
        | None -> "-"));
  (match reopts t with
  | [] -> Fmt.pf ppf "  triggers       none@."
  | rs ->
      List.iter
        (fun r ->
          Fmt.pf ppf "  trigger        %s@step %d (t=%d): %s -> %s@."
            r.ro_reason r.ro_step r.ro_time
            (match r.ro_build_id_before with "" -> "<none>" | id -> short_id id)
            (match r.ro_build_id_after with "" -> "<none>" | id -> short_id id))
        rs);
  Fmt.pf ppf "%a" Monitor.pp t.monitor

let manifest_section (t : t) : string * Json.t =
  ( "service",
    Json.Obj
      [
        ("steps", Json.Int t.steps);
        ("events", Json.Int t.events_seen);
        ("lines", Json.Int t.lines_in);
        ("hosts", Json.Int (Sketch.hosts t.sketch));
        ("start_time", Json.Int t.start_time);
        ("now", Json.Int t.now);
        ("expected_build_id", Json.String t.expected_build_id);
        ( "trigger",
          let tr = t.cfg.c_trigger in
          Json.Obj
            [
              ("min_hosts", Json.Int tr.tr_min_hosts);
              ("min_coverage_pct", Json.Float tr.tr_min_coverage_pct);
              ("max_staleness_pct", Json.Float tr.tr_max_staleness_pct);
              ("min_recovery_rate", Json.Float tr.tr_min_recovery_rate);
              ("max_interval_s", Json.Int tr.tr_max_interval);
              ("cooldown_hosts", Json.Int tr.tr_cooldown_hosts);
            ] );
        ( "sketch",
          Json.Obj
            [
              ("budget_bytes", Json.Int (Sketch.budget t.sketch));
              ("occupancy_bytes", Json.Int (Sketch.occupancy t.sketch));
              ("peak_bytes", Json.Int (Sketch.peak t.sketch));
              ("funcs", Json.Int (Sketch.funcs t.sketch));
              ( "within_budget",
                Json.Bool (Sketch.peak t.sketch <= Sketch.budget t.sketch) );
              ( "evicted_events",
                Json.Int (Fdata.clamp_int (Sketch.evicted_events t.sketch)) );
              ("malformed_lines", Json.Int (Sketch.malformed t.sketch));
            ] );
        (* flat, so the bstat default budget rule service.sketch_evictions
           sees it without a glob *)
        ("sketch_evictions", Json.Int (Sketch.evictions t.sketch));
        ( "trigger_latency_ticks",
          match t.first_trigger_step with
          | Some s -> Json.Int s
          | None -> Json.Null );
        ( "reopts",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("step", Json.Int r.ro_step);
                     ("time", Json.Int r.ro_time);
                     ("reason", Json.String r.ro_reason);
                     ("build_id_before", Json.String r.ro_build_id_before);
                     ("build_id_after", Json.String r.ro_build_id_after);
                   ])
               (reopts t)) );
        ( "quality",
          match t.last_quality with
          | None -> Json.Null
          | Some q -> snd (Quality.manifest_section q) );
      ] )

(* ASCII status from a saved manifest — what `boltd --status` renders,
   so an operator can inspect a daemon's last written state without the
   daemon. *)
let pp_status_json ppf (m : Json.t) =
  match Json.member "service" m with
  | None -> Fmt.pf ppf "no service section in this manifest@."
  | Some s ->
      let int k = match Json.member k s with Some (Json.Int i) -> i | _ -> 0 in
      let str k =
        match Json.member k s with Some (Json.String v) -> v | _ -> ""
      in
      Fmt.pf ppf "service status: %d step(s), %d host(s), t=%d@." (int "steps")
        (int "hosts") (int "now");
      Fmt.pf ppf "  target build   %s@."
        (match str "expected_build_id" with "" -> "<none>" | id -> short_id id);
      Fmt.pf ppf "  ingest         %d shard(s), %d line(s)@." (int "events")
        (int "lines");
      (match Json.member "sketch" s with
      | Some sk ->
          let ski k =
            match Json.member k sk with Some (Json.Int i) -> i | _ -> 0
          in
          Fmt.pf ppf "  sketch         %d / %d bytes (peak %d), %d func(s), %d eviction(s)@."
            (ski "occupancy_bytes") (ski "budget_bytes") (ski "peak_bytes")
            (ski "funcs") (int "sketch_evictions")
      | None -> ());
      (match Json.member "quality" s with
      | Some (Json.Obj _ as q) ->
          let qf k =
            match Json.member k q with
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> 0.0
          in
          Fmt.pf ppf "  quality        coverage %.1f%%  staleness %.1f%%@."
            (qf "coverage_pct") (qf "staleness_pct")
      | _ -> ());
      (match Json.member "reopts" s with
      | Some (Json.List rs) when rs <> [] ->
          List.iter
            (fun r ->
              let ri k =
                match Json.member k r with Some (Json.Int i) -> i | _ -> 0
              in
              let rs_ k =
                match Json.member k r with
                | Some (Json.String v) -> v
                | _ -> ""
              in
              Fmt.pf ppf "  trigger        %s@step %d (t=%d): %s -> %s@."
                (rs_ "reason") (ri "step") (ri "time")
                (match rs_ "build_id_before" with "" -> "<none>" | i -> short_id i)
                (match rs_ "build_id_after" with "" -> "<none>" | i -> short_id i))
            rs
      | _ -> Fmt.pf ppf "  triggers       none@.");
      (match Json.member "fleet_health" m with
      | Some fh -> (
          match (Json.member "ticks" fh, Json.member "hosts" fh) with
          | Some (Json.Int ticks), Some (Json.List hosts) ->
              let stale =
                List.length
                  (List.filter
                     (fun h -> Json.member "stale" h = Some (Json.Bool true))
                     hosts)
              in
              Fmt.pf ppf "  fleet health   %d tick(s), %d host(s), %d stale@."
                ticks (List.length hosts) stale
          | _ -> ())
      | None -> ())
