(* Bounded-memory per-host fleet state: what a continuous-optimization
   daemon remembers between re-optimizations.

   One shard arrives per host per reporting interval; keeping every
   record of every host forever is exactly what a daemon cannot do, so
   the sketch holds, per host, the header provenance (build-id,
   timestamp, event total) plus at most [topk] function entries — the
   functions with the largest event mass — and the whole sketch lives
   under a hard byte budget estimated by a fixed per-record cost model
   (the steady-state RSS proxy that `bench service` reports).

   Eviction is *saturating*: evicted entries are gone, but their event
   mass is accumulated (64-bit saturating add) in [evicted_events] and
   each eviction bumps a counter, so the quality cost of the bound is
   observable rather than silent.  Eviction order is deterministic —
   smallest event mass first, ties broken by (host, function) — so two
   services fed the same shards in any order inside a step agree on
   every byte of state.

   Ingest goes through [Fdata.scan]: records are folded into the
   per-function entries as the lexer produces them, and per-shard
   record lists never materialize. *)

module Fdata = Bolt_profile.Fdata
module Obs = Bolt_obs.Obs

(* One function's accumulated records from a host's latest shard.
   Records of the same key are summed at ingest (saturating), so an
   entry is bounded by the function's distinct (offset-pair) keys. *)
type entry = {
  e_func : string;
  mutable e_events : int64; (* total count mass, eviction priority *)
  mutable e_bytes : int; (* cost-model estimate of this entry *)
  mutable e_branches : (int * string * int, int64 * int64) Hashtbl.t;
  mutable e_ranges : (int * int, int64) Hashtbl.t;
  mutable e_samples : (int, int64) Hashtbl.t;
}

type host_state = {
  hs_host : string;
  mutable hs_header : Fdata.header;
  mutable hs_lbr : bool;
  mutable hs_fingerprints : Bolt_obj.Fingerprint.t;
  hs_entries : (string, entry) Hashtbl.t;
  mutable hs_bytes : int; (* sum of entry costs + host base cost *)
}

type t = {
  topk : int; (* max function entries per host *)
  budget : int; (* global byte budget over all hosts' entries *)
  obs : Obs.t;
  hosts : (string, host_state) Hashtbl.t;
  mutable occupancy : int; (* current cost-model bytes *)
  mutable peak : int; (* high-water mark, sampled after each ingest *)
  mutable evictions : int;
  mutable evicted_events : int64; (* saturating mass lost to eviction *)
  mutable shards_in : int;
  mutable records_in : int;
  mutable malformed : int;
}

(* ---- cost model (bytes per retained element) ----
   Fixed constants, not live measurements: the point is a deterministic,
   platform-independent occupancy that moves with what is retained. *)

let host_base = 96
let entry_base = 64
let branch_cost tf = 56 + String.length tf
let range_cost = 40
let sample_cost = 32

let create ?obs ~topk ~budget () =
  let obs = match obs with Some o -> o | None -> Obs.null () in
  {
    topk = max 1 topk;
    budget = max 1 budget;
    obs;
    hosts = Hashtbl.create 64;
    occupancy = 0;
    peak = 0;
    evictions = 0;
    evicted_events = 0L;
    shards_in = 0;
    records_in = 0;
    malformed = 0;
  }

let entry_of func =
  {
    e_func = func;
    e_events = 0L;
    e_bytes = entry_base + String.length func;
    e_branches = Hashtbl.create 8;
    e_ranges = Hashtbl.create 4;
    e_samples = Hashtbl.create 4;
  }

let evict_entry t (hs : host_state) (e : entry) =
  Hashtbl.remove hs.hs_entries e.e_func;
  hs.hs_bytes <- hs.hs_bytes - e.e_bytes;
  t.occupancy <- t.occupancy - e.e_bytes;
  t.evictions <- t.evictions + 1;
  t.evicted_events <- Fdata.sat_add t.evicted_events e.e_events;
  Obs.incr t.obs "service.sketch_evictions"

(* Deterministic eviction order: least event mass first, then host, then
   function name. *)
let evict_order (h1, (e1 : entry)) (h2, (e2 : entry)) =
  compare (e1.e_events, h1, e1.e_func) (e2.e_events, h2, e2.e_func)

let enforce_topk t (hs : host_state) =
  let n = Hashtbl.length hs.hs_entries in
  if n > t.topk then begin
    let entries =
      Hashtbl.fold (fun _ e acc -> (hs.hs_host, e) :: acc) hs.hs_entries []
      |> List.sort evict_order
    in
    let rec drop k = function
      | (_, e) :: rest when k > 0 ->
          evict_entry t hs e;
          drop (k - 1) rest
      | _ -> ()
    in
    drop (n - t.topk) entries
  end

(* Global budget: evict the fleet-wide smallest entries until occupancy
   falls to a low-water mark (90% of budget), so enforcement runs once
   per handful of shards instead of once per record.  The bound that
   callers observe — occupancy <= budget after every ingest — is exact. *)
let enforce_budget t =
  if t.occupancy > t.budget then begin
    let low_water = t.budget * 9 / 10 in
    let all =
      Hashtbl.fold
        (fun _ hs acc ->
          Hashtbl.fold (fun _ e acc -> (hs, e) :: acc) hs.hs_entries acc)
        t.hosts []
      |> List.sort (fun (h1, e1) (h2, e2) ->
             evict_order (h1.hs_host, e1) (h2.hs_host, e2))
    in
    let rec go = function
      | (hs, e) :: rest when t.occupancy > low_water ->
          evict_entry t hs e;
          go rest
      | _ -> ()
    in
    go all
  end

(* What one [ingest] call did. *)
type ingested = {
  ig_records : int;
  ig_warnings : int;
}

(* Fold one arriving shard into the sketch.  The newest shard wins per
   host: a host's previous entries are dropped (not counted as
   evictions — supersession is the protocol, not memory pressure). *)
let ingest t ~host (text : string) : ingested =
  let hs =
    match Hashtbl.find_opt t.hosts host with
    | Some hs ->
        (* superseded: reset entries, keep identity *)
        t.occupancy <- t.occupancy - hs.hs_bytes;
        Hashtbl.reset hs.hs_entries;
        hs.hs_bytes <- host_base + String.length host;
        t.occupancy <- t.occupancy + hs.hs_bytes;
        hs
    | None ->
        let hs =
          {
            hs_host = host;
            hs_header = { Fdata.no_header with Fdata.hd_host = host };
            hs_lbr = true;
            hs_fingerprints = [];
            hs_entries = Hashtbl.create 64;
            hs_bytes = host_base + String.length host;
          }
        in
        Hashtbl.add t.hosts host hs;
        t.occupancy <- t.occupancy + hs.hs_bytes;
        hs
  in
  let records = ref 0 in
  let entry func =
    match Hashtbl.find_opt hs.hs_entries func with
    | Some e -> e
    | None ->
        let e = entry_of func in
        Hashtbl.add hs.hs_entries func e;
        hs.hs_bytes <- hs.hs_bytes + e.e_bytes;
        t.occupancy <- t.occupancy + e.e_bytes;
        e
  in
  let grow e by =
    e.e_bytes <- e.e_bytes + by;
    hs.hs_bytes <- hs.hs_bytes + by;
    t.occupancy <- t.occupancy + by
  in
  let prof, warnings =
    Fdata.scan
      ~branch:(fun (b : Fdata.branch) ->
        incr records;
        let e = entry b.Fdata.br_from_func in
        e.e_events <- Fdata.sat_add e.e_events b.Fdata.br_count;
        let k = (b.Fdata.br_from_off, b.Fdata.br_to_func, b.Fdata.br_to_off) in
        (match Hashtbl.find_opt e.e_branches k with
        | Some (c, m) ->
            Hashtbl.replace e.e_branches k
              ( Fdata.sat_add c b.Fdata.br_count,
                Fdata.sat_add m b.Fdata.br_mispreds )
        | None ->
            Hashtbl.add e.e_branches k (b.Fdata.br_count, b.Fdata.br_mispreds);
            grow e (branch_cost b.Fdata.br_to_func)))
      ~range:(fun (r : Fdata.range) ->
        incr records;
        let e = entry r.Fdata.rg_func in
        e.e_events <- Fdata.sat_add e.e_events r.Fdata.rg_count;
        let k = (r.Fdata.rg_start, r.Fdata.rg_end) in
        (match Hashtbl.find_opt e.e_ranges k with
        | Some c -> Hashtbl.replace e.e_ranges k (Fdata.sat_add c r.Fdata.rg_count)
        | None ->
            Hashtbl.add e.e_ranges k r.Fdata.rg_count;
            grow e range_cost))
      ~sample:(fun (s : Fdata.sample) ->
        incr records;
        let e = entry s.Fdata.sm_func in
        e.e_events <- Fdata.sat_add e.e_events s.Fdata.sm_count;
        match Hashtbl.find_opt e.e_samples s.Fdata.sm_off with
        | Some c ->
            Hashtbl.replace e.e_samples s.Fdata.sm_off
              (Fdata.sat_add c s.Fdata.sm_count)
        | None ->
            Hashtbl.add e.e_samples s.Fdata.sm_off s.Fdata.sm_count;
            grow e sample_cost)
      text
  in
  (* provenance from the scan's header view; keep the host's name as the
     service knows it, not the shard's claim *)
  let hd = Option.value ~default:Fdata.no_header prof.Fdata.header in
  hs.hs_header <- { hd with Fdata.hd_host = host };
  hs.hs_lbr <- prof.Fdata.lbr;
  if prof.Fdata.fingerprints <> [] then
    hs.hs_fingerprints <- prof.Fdata.fingerprints;
  enforce_topk t hs;
  enforce_budget t;
  t.peak <- max t.peak t.occupancy;
  t.shards_in <- t.shards_in + 1;
  t.records_in <- t.records_in + !records;
  t.malformed <- t.malformed + List.length warnings;
  Obs.set t.obs "service.sketch_occupancy_bytes" (float_of_int t.occupancy);
  { ig_records = !records; ig_warnings = List.length warnings }

(* ---- reading the sketch back out ---- *)

let hosts t = Hashtbl.length t.hosts

let funcs t =
  Hashtbl.fold (fun _ hs acc -> acc + Hashtbl.length hs.hs_entries) t.hosts 0

let occupancy t = t.occupancy
let peak t = t.peak
let budget t = t.budget
let evictions t = t.evictions
let evicted_events t = t.evicted_events
let shards_in t = t.shards_in
let records_in t = t.records_in
let malformed t = t.malformed

(* Materialize one host's retained state as a canonical profile. *)
let profile_of (hs : host_state) : Fdata.t =
  let branches = ref [] and ranges = ref [] and samples = ref [] in
  Hashtbl.iter
    (fun _ (e : entry) ->
      Hashtbl.iter
        (fun (fo, tf, to_) (c, m) ->
          branches :=
            {
              Fdata.br_from_func = e.e_func;
              br_from_off = fo;
              br_to_func = tf;
              br_to_off = to_;
              br_count = c;
              br_mispreds = m;
            }
            :: !branches)
        e.e_branches;
      Hashtbl.iter
        (fun (s, en) c ->
          ranges :=
            { Fdata.rg_func = e.e_func; rg_start = s; rg_end = en; rg_count = c }
            :: !ranges)
        e.e_ranges;
      Hashtbl.iter
        (fun o c ->
          samples :=
            { Fdata.sm_func = e.e_func; sm_off = o; sm_count = c } :: !samples)
        e.e_samples)
    hs.hs_entries;
  Fdata.normalize
    {
      Fdata.lbr = hs.hs_lbr;
      header = Some hs.hs_header;
      branches = !branches;
      ranges = !ranges;
      samples = !samples;
      total_samples = 0L (* recomputed by normalize *);
      fingerprints = hs.hs_fingerprints;
    }

(* Every host's retained shard, in sorted host order — the merger input
   for a service assessment step.  Canonical form regardless of the
   order shards arrived in. *)
let to_shards t : Bolt_fleet.Merge.loaded list =
  Hashtbl.fold (fun _ hs acc -> hs :: acc) t.hosts []
  |> List.sort (fun a b -> compare a.hs_host b.hs_host)
  |> List.map (fun hs ->
         Bolt_fleet.Merge.shard_of_profile ~name:hs.hs_host (profile_of hs))
