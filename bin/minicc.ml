(* minicc: the MiniC compiler driver.

     minicc -o prog.x a.mc b.mc
     minicc -O2 --lto --pgo-apply prof.edges -o prog.x a.mc
     minicc --instrument --mapping prog.map -o prog.x a.mc
     minicc -o prog.x w/*.mc w/*.bo --externs w/externals.txt   *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile srcs out opt lto pgo_apply instrument mapping_out emit_relocs
    function_sections pic_jt icf order_file externs_file =
  (* .bo positionals are pre-assembled BELF objects (genwork's assembly
     dispatchers); everything else is MiniC source *)
  let objs, mc_srcs =
    List.partition (fun p -> Filename.check_suffix p ".bo") srcs
  in
  let sources =
    List.map
      (fun path ->
        let name = Filename.remove_extension (Filename.basename path) in
        (name, read_file path))
      mc_srcs
  in
  let extra_objs = List.map Bolt_obj.Objfile.load objs in
  let externals =
    match externs_file with
    | None -> []
    | Some p ->
        read_file p |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               match String.split_on_char ' ' (String.trim line) with
               | [ "" ] -> None
               | [ name; arity ] -> (
                   match int_of_string_opt arity with
                   | Some a -> Some (name, a)
                   | None -> Fmt.failwith "bad externs line: %s" line)
               | _ -> Fmt.failwith "bad externs line: %s" line)
  in
  let pgo =
    if instrument then Bolt_minic.Driver.Instrument
    else
      match pgo_apply with
      | Some p -> Bolt_minic.Driver.Apply (Bolt_minic.Pgo.load_profile p)
      | None -> Bolt_minic.Driver.No_pgo
  in
  let func_order =
    Option.map
      (fun p ->
        let ic = open_in p in
        let rec loop acc =
          match input_line ic with
          | l -> loop (l :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        loop [])
      order_file
  in
  let options =
    {
      Bolt_minic.Driver.default_options with
      opt_level = opt;
      lto;
      pgo;
      emit_relocs;
      function_sections;
      pic_jump_tables = pic_jt;
      linker_icf = icf;
      func_order;
    }
  in
  match Bolt_minic.Driver.compile ~options ~externals ~extra_objs sources with
  | r ->
      Bolt_obj.Objfile.save out r.exe;
      (match (r.mapping, mapping_out) with
      | Some m, Some path -> Bolt_minic.Pgo.save_mapping path m
      | Some m, None -> Bolt_minic.Pgo.save_mapping (out ^ ".map") m
      | None, _ -> ());
      Fmt.pr "wrote %s (%d bytes of code, %d functions)@." out
        (Bolt_obj.Objfile.text_size r.exe)
        (List.length (Bolt_obj.Objfile.function_symbols r.exe));
      0
  | exception Bolt_minic.Parser.Parse_error (msg, line) ->
      Fmt.epr "parse error at line %d: %s@." line msg;
      1
  | exception Bolt_minic.Sema.Sema_error (msg, pos) ->
      Fmt.epr "error at %s:%d: %s@." pos.Bolt_minic.Ast.file pos.Bolt_minic.Ast.line msg;
      1

let srcs = Arg.(non_empty & pos_all file [] & info [] ~docv:"SOURCE")
let out = Arg.(value & opt string "a.x" & info [ "o" ] ~docv:"OUT" ~doc:"Output executable.")
let opt = Arg.(value & opt int 2 & info [ "O" ] ~doc:"Optimization level (0-2).")
let lto = Arg.(value & flag & info [ "lto" ] ~doc:"Whole-program (link-time) optimization.")

let pgo_apply =
  Arg.(value & opt (some file) None & info [ "pgo-apply" ] ~doc:"Apply an edge profile.")

let instrument =
  Arg.(value & flag & info [ "instrument" ] ~doc:"Insert PGO edge counters.")

let mapping_out =
  Arg.(value & opt (some string) None & info [ "mapping" ] ~doc:"Counter mapping output.")

let emit_relocs =
  Arg.(value & opt bool true & info [ "emit-relocs" ] ~doc:"Keep relocations (BOLT relocations mode).")

let function_sections =
  Arg.(value & opt bool true & info [ "ffunction-sections" ] ~doc:"One section per function.")

let pic_jt =
  Arg.(value & opt bool true & info [ "pic-jump-tables" ] ~doc:"PIC jump tables.")

let icf = Arg.(value & flag & info [ "licf" ] ~doc:"Linker identical-code folding.")

let order_file =
  Arg.(value & opt (some file) None & info [ "function-order" ] ~doc:"Link-time function order file.")

let externs_file =
  Arg.(
    value & opt (some file) None
    & info [ "externs" ]
        ~doc:
          "Name/arity manifest (one \"name arity\" per line, genwork's \
           externals.txt) for functions defined in .bo objects.")

let cmd =
  Cmd.v
    (Cmd.info "minicc" ~doc:"MiniC compiler targeting BELF/BISA")
    Term.(
      const compile $ srcs $ out $ opt $ lto $ pgo_apply $ instrument $ mapping_out
      $ emit_relocs $ function_sections $ pic_jt $ icf $ order_file $ externs_file)

let () = exit (Cmd.eval' cmd)
