(* bsim: run a BELF executable under the simulator, optionally recording
   samples (the `perf record` analog).

     bsim prog.x
     bsim --record samples.bprf --event cycles --lbr prog.x
     bsim --counters --heatmap heat.csv prog.x
     bsim --input 1,2,3 prog.x                                  *)

open Cmdliner
module Machine = Bolt_sim.Machine
module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json

(* Export the performance counters into the metrics registry under the
   shared `sim.` namespace, so bsim manifests diff against each other
   and against obolt's dyno-stats predictions. *)
let record_counters obs (c : Machine.counters) =
  let pairs =
    [
      ("sim.instructions", c.Machine.instructions);
      ("sim.cycles", Machine.cycles c);
      ("sim.branches", c.Machine.branches);
      ("sim.cond_branches", c.Machine.cond_branches);
      ("sim.cond_taken", c.Machine.cond_taken);
      ("sim.taken_branches", c.Machine.taken_branches);
      ("sim.calls", c.Machine.calls);
      ("sim.branch_misses", c.Machine.branch_misses);
      ("sim.l1i_accesses", c.Machine.l1i_accesses);
      ("sim.l1i_misses", c.Machine.l1i_misses);
      ("sim.l1d_accesses", c.Machine.l1d_accesses);
      ("sim.l1d_misses", c.Machine.l1d_misses);
      ("sim.l2_misses", c.Machine.l2_misses);
      ("sim.llc_misses", c.Machine.llc_misses);
      ("sim.itlb_misses", c.Machine.itlb_misses);
      ("sim.dtlb_misses", c.Machine.dtlb_misses);
      ("sim.throws", c.Machine.throws);
    ]
  in
  List.iter (fun (k, v) -> Obs.incr obs ~by:v k) pairs

let run exe_path record event period lbr precise counters_flag heat_csv input_str
    dump_counters_sym trace_out history =
  let obs =
    Obs.create ~enabled:(trace_out <> None || history <> None) ~name:"bsim" ()
  in
  let exe = Obs.span obs "load-binary" (fun () -> Bolt_obj.Objfile.load exe_path) in
  let input =
    match input_str with
    | "" -> [||]
    | s -> String.split_on_char ',' s |> List.map int_of_string |> Array.of_list
  in
  let sampling =
    if record <> None then
      Some
        {
          Machine.event =
            (match event with
            | "cycles" -> Machine.Ev_cycles
            | "instructions" -> Machine.Ev_instructions
            | "taken-branches" -> Machine.Ev_taken_branches
            | e -> Fmt.failwith "unknown event %s" e);
          period;
          lbr;
          precise;
        }
    else None
  in
  let o =
    Obs.span obs "simulate" (fun () ->
        let o =
          Machine.run ?sampling
            ~heatmap:(heat_csv <> None || trace_out <> None)
            exe ~input
        in
        record_counters obs o.Machine.counters;
        (match o.Machine.profile with
        | Some p -> Obs.incr obs ~by:p.Machine.rp_samples "sim.samples"
        | None -> ());
        o)
  in
  List.iter (fun v -> Printf.printf "%d\n" v) o.Machine.output;
  if o.Machine.uncaught_exception then Fmt.epr "uncaught exception@.";
  (match (record, o.Machine.profile) with
  | Some path, Some p ->
      Bolt_profile.Samples.save path p;
      Fmt.epr "recorded %d samples to %s@." p.Machine.rp_samples path
  | _ -> ());
  (match heat_csv with
  | Some path ->
      (match o.Machine.heat with
      | Some h ->
          let oc = open_out path in
          Hashtbl.iter (fun addr c -> Printf.fprintf oc "%d,%d\n" addr c) h;
          close_out oc
      | None -> ())
  | None -> ());
  (match dump_counters_sym with
  | Some spec -> (
      (* SYMBOL:N -> dump N 64-bit words from the final memory *)
      match String.split_on_char ':' spec with
      | [ sym; n ] -> (
          match Bolt_obj.Objfile.find_symbol exe sym with
          | Some s ->
              for i = 0 to int_of_string n - 1 do
                Printf.printf "counter %d %d\n" i
                  (Bolt_sim.Memory.read64 o.Machine.final_mem
                     (s.Bolt_obj.Types.sym_value + (8 * i)))
              done
          | None -> Fmt.epr "no symbol %s@." sym)
      | _ -> Fmt.epr "bad --dump-counters spec@.")
  | None -> ());
  (match (trace_out, history) with
  | None, None -> ()
  | _ ->
      let sections =
        [
          ( "run",
            Json.Obj
              [
                ("exe", Json.String exe_path);
                ("exit_code", Json.Int o.Machine.exit_code);
                ("uncaught_exception", Json.Bool o.Machine.uncaught_exception);
                ("sampling", Json.Bool (sampling <> None));
                ("event", Json.String event);
                ("period", Json.Int period);
                ("lbr", Json.Bool lbr);
              ] );
        ]
        @
        match (o.Machine.heat, Bolt_obj.Objfile.find_section exe ".text") with
        | Some heat, Some text ->
            let hm =
              Bolt_core.Heatmap.build ~base:text.Bolt_obj.Types.sec_addr
                ~span:text.Bolt_obj.Types.sec_size heat
            in
            [ ("heatmap", Bolt_core.Heatmap.summary_json hm) ]
        | _ -> []
      in
      let manifest =
        Bolt_obs.Manifest.make ~tool:"bsim" ~argv:(Array.to_list Sys.argv)
          ~sections obs
      in
      (match trace_out with
      | Some path ->
          Bolt_obs.Manifest.save path manifest;
          Fmt.epr "wrote manifest %s@." path
      | None -> ());
      match history with
      | Some path ->
          Bolt_obs.History.append path
            (Bolt_obs.History.of_manifest
               ~workload:(Filename.basename exe_path)
               ~git_rev:(Bolt_obs.History.detect_git_rev ())
               ~build_id:exe.Bolt_obj.Objfile.build_id manifest);
          Fmt.epr "appended run history %s@." path
      | None -> ());
  if counters_flag then begin
    let c = o.Machine.counters in
    Fmt.epr "instructions      %d@." c.Machine.instructions;
    Fmt.epr "cycles            %d@." (Machine.cycles c);
    Fmt.epr "taken-branches    %d@." c.Machine.taken_branches;
    Fmt.epr "branch-misses     %d@." c.Machine.branch_misses;
    Fmt.epr "l1i-misses        %d@." c.Machine.l1i_misses;
    Fmt.epr "l1d-misses        %d@." c.Machine.l1d_misses;
    Fmt.epr "llc-misses        %d@." c.Machine.llc_misses;
    Fmt.epr "itlb-misses       %d@." c.Machine.itlb_misses;
    Fmt.epr "dtlb-misses       %d@." c.Machine.dtlb_misses;
    Fmt.epr "throws            %d@." c.Machine.throws
  end;
  o.Machine.exit_code land 0xff

let exe_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"EXE")
let record = Arg.(value & opt (some string) None & info [ "record" ] ~doc:"Write raw samples here.")
let event = Arg.(value & opt string "cycles" & info [ "event" ] ~doc:"cycles|instructions|taken-branches")
let period = Arg.(value & opt int 4001 & info [ "period" ] ~doc:"Sampling period.")
let lbr = Arg.(value & opt bool true & info [ "lbr" ] ~doc:"Record last-branch records.")
let precise = Arg.(value & opt bool true & info [ "precise" ] ~doc:"PEBS-style precise IPs.")
let counters = Arg.(value & flag & info [ "counters" ] ~doc:"Print performance counters.")
let heat_csv = Arg.(value & opt (some string) None & info [ "heatmap" ] ~doc:"Write fetch heat CSV.")
let input = Arg.(value & opt string "" & info [ "input" ] ~doc:"Comma-separated input tape.")
let dump_counters = Arg.(value & opt (some string) None & info [ "dump-counters" ] ~doc:"SYMBOL:N memory dump.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON run manifest (spans, `sim.*` counter metrics, \
           heat-map summary) to $(docv).")

let history =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "Append a compact run record (`sim.*` counters, wall times, \
           build-id) to the JSONL run-history store at $(docv); inspect the \
           trajectory with bstat.")

let cmd =
  Cmd.v
    (Cmd.info "bsim" ~doc:"BISA simulator with sampling profiler")
    Term.(
      const run $ exe_path $ record $ event $ period $ lbr $ precise $ counters
      $ heat_csv $ input $ dump_counters $ trace_out $ history)

let () = exit (Cmd.eval' cmd)
