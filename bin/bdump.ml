(* bdump: inspect BELF files — the objdump/readelf analog.

     bdump prog.x                     # sections + symbols summary
     bdump -d prog.x                  # disassemble all functions
     bdump -d --func main prog.x     # one function, with line info
     bdump --relocs --fdes prog.x    # relocation and frame records
     bdump --layout-score prog.x prog.fdata   # offline ExtTSP scores *)

open Cmdliner
open Bolt_obj

let dump_function exe (s : Types.symbol) =
  let sec =
    List.find
      (fun (sec : Types.section) ->
        s.sym_value >= sec.sec_addr && s.sym_value < sec.sec_addr + sec.sec_size)
      exe.Objfile.sections
  in
  Printf.printf "\n%08x <%s>:  (%d bytes, %s)\n" s.sym_value s.sym_name s.sym_size
    sec.sec_name;
  let dbg = Objfile.dbg_for exe s.sym_name in
  let line_at off =
    match dbg with
    | None -> None
    | Some d ->
        List.fold_left
          (fun acc (o, f, l) -> if o <= off then Some (f, l) else acc)
          None
          (List.sort compare d.dbg_entries)
  in
  let pos = ref (s.sym_value - sec.sec_addr) in
  let stop = !pos + s.sym_size in
  let last_line = ref None in
  while !pos < stop do
    let off = !pos - (s.sym_value - sec.sec_addr) in
    match Bolt_isa.Codec.decode sec.sec_data !pos with
    | i, sz ->
        let loc = line_at off in
        let loc_str =
          if loc <> !last_line then (
            last_line := loc;
            match loc with
            | Some (f, l) -> Printf.sprintf "   # %s:%d" f l
            | None -> "")
          else ""
        in
        Printf.printf "  %6x:  %s%s\n" off (Bolt_isa.Insn.to_string i) loc_str;
        pos := !pos + sz
    | exception Bolt_isa.Codec.Decode_error _ ->
        Printf.printf "  %6x:  <bad byte %02x>\n" off
          (Char.code (Bytes.get sec.sec_data !pos));
        incr pos
  done

(* --manifest: inspect a telemetry run manifest instead of a BELF file —
   top-N slowest spans, headline metrics, quarantine count. *)
let dump_manifest path top =
  let m = Bolt_obs.Manifest.load path in
  Fmt.pr "%a" (Bolt_obs.Manifest.pp_slowest ~n:top) m;
  (match Bolt_obs.Json.member "metrics" m with
  | Some (Bolt_obs.Json.Obj fields) when fields <> [] ->
      Fmt.pr "metrics (%d):@." (List.length fields);
      List.iter
        (fun (name, body) ->
          match
            ( Bolt_obs.Json.member "type" body |> Bolt_obs.Json.get_string
              |> fun t -> Option.value ~default:"" t,
              Bolt_obs.Json.member "value" body )
          with
          | "counter", Some (Bolt_obs.Json.Int v) -> Fmt.pr "  %-40s %12d@." name v
          | "gauge", Some v ->
              Fmt.pr "  %-40s %12.4f@." name
                (Option.value ~default:0.0 (Bolt_obs.Json.get_float (Some v)))
          | _ -> ())
        fields
  | _ -> ());
  (* passes that fanned out over worker domains carry a "jobs" attr and
     per-function time distribution; their per-domain child spans show
     the load balance *)
  (match
     Bolt_obs.Manifest.flat_spans m
     |> List.filter (fun (s : Bolt_obs.Manifest.flat_span) ->
            List.mem_assoc "jobs" s.fs_attrs)
   with
  | [] -> ()
  | parallel ->
      Fmt.pr "parallel sections:@.";
      List.iter
        (fun (s : Bolt_obs.Manifest.flat_span) ->
          let geti k =
            match List.assoc_opt k s.fs_attrs with
            | Some (Bolt_obs.Json.Int i) -> i
            | _ -> 0
          in
          let getf k =
            match List.assoc_opt k s.fs_attrs with
            | Some (Bolt_obs.Json.Float f) -> f
            | _ -> 0.0
          in
          Fmt.pr "  %-20s jobs=%d fns=%d fn_p50=%.3f ms fn_p99=%.3f ms@."
            s.fs_name (geti "jobs") (geti "fn_n") (getf "fn_p50_ms")
            (getf "fn_p99_ms"))
        parallel);
  (match Bolt_obs.Json.member "quarantine" m with
  | Some (Bolt_obs.Json.List (_ :: _ as q)) ->
      Fmt.pr "quarantined functions: %d@." (List.length q)
  | _ -> ());
  0

(* --layout-score: score a binary's current block layout against a
   profile with lib/layout's offline evaluator — per-function ExtTSP
   score and estimated i-cache-line / i-TLB-page working sets, hottest
   functions first, no simulation run needed. *)
let dump_layout_score path fdata =
  match fdata with
  | None ->
      Fmt.epr "bdump: --layout-score needs a profile: bdump --layout-score EXE FDATA@.";
      1
  | Some fdata ->
      let exe = Objfile.load path in
      let prof = Bolt_profile.Fdata.load fdata in
      let ctx = Bolt_core.Context.create ~opts:Bolt_core.Opts.none exe in
      let env = Bolt_core.Passman.make_env ctx prof in
      Bolt_core.Passman.run env Bolt_core.Passman.pre_passes;
      let rows = Bolt_core.Layout_bbs.snapshot ctx in
      Printf.printf "%-28s %12s %12s %8s %6s %9s\n" "function" "exec count"
        "exttsp" "lines" "pages" "hot bytes";
      List.iter
        (fun (name, exec, (r : Bolt_layout.Evaluator.result)) ->
          Printf.printf "%-28s %12d %12.1f %8d %6d %9d\n" name exec
            r.Bolt_layout.Evaluator.ev_score
            r.Bolt_layout.Evaluator.ev_icache_lines
            r.Bolt_layout.Evaluator.ev_itlb_pages
            r.Bolt_layout.Evaluator.ev_hot_bytes)
        rows;
      let t = Bolt_core.Layout_bbs.snapshot_totals rows in
      Printf.printf "%-28s %12s %12.1f %8d %6d %9d\n" "TOTAL" ""
        t.Bolt_layout.Evaluator.ev_score t.Bolt_layout.Evaluator.ev_icache_lines
        t.Bolt_layout.Evaluator.ev_itlb_pages
        t.Bolt_layout.Evaluator.ev_hot_bytes;
      0

let run path fdata disas func relocs fdes lsdas fingerprints manifest layout_score top =
  if manifest then dump_manifest path top
  else if layout_score then dump_layout_score path fdata
  else begin
  let exe = Objfile.load path in
  Printf.printf "%s: %s, entry %#x\n" path
    (match exe.Objfile.kind with Objfile.Executable -> "executable" | Objfile.Object -> "relocatable")
    exe.Objfile.entry;
  Printf.printf "Build id: %s\n"
    (if exe.Objfile.build_id = "" then "<unstamped>" else exe.Objfile.build_id);
  Printf.printf "\nSections:\n";
  List.iter
    (fun (s : Types.section) ->
      Printf.printf "  %-12s %-7s addr %#10x size %8d\n" s.sec_name
        (match s.sec_kind with
        | Types.Text -> "TEXT"
        | Types.Rodata -> "RODATA"
        | Types.Data -> "DATA"
        | Types.Bss -> "BSS")
        s.sec_addr s.sec_size)
    exe.Objfile.sections;
  let funcs = Objfile.function_symbols exe in
  Printf.printf "\n%d functions, %d symbols, %d relocs, %d FDEs, %d LSDAs\n"
    (List.length funcs)
    (List.length exe.Objfile.symbols)
    (List.length exe.Objfile.relocs)
    (List.length exe.Objfile.fdes)
    (List.length exe.Objfile.lsdas);
  if relocs then begin
    Printf.printf "\nRelocations:\n";
    List.iter
      (fun (r : Types.reloc) ->
        Printf.printf "  %-10s+%-8x %-6s %s%+d\n" r.rel_section r.rel_offset
          (match r.rel_kind with
          | Types.Abs32 -> "ABS32"
          | Types.Abs64 -> "ABS64"
          | Types.Rel32 -> "REL32"
          | Types.Rel8 -> "REL8")
          r.rel_sym r.rel_addend)
      exe.Objfile.relocs
  end;
  if fdes then begin
    Printf.printf "\nFrame descriptors:\n";
    List.iter
      (fun (f : Types.fde) ->
        Printf.printf "  %s @%#x (%d bytes): %d CFI ops\n" f.fde_func f.fde_addr
          f.fde_size (List.length f.fde_cfi))
      exe.Objfile.fdes
  end;
  if lsdas then begin
    Printf.printf "\nException tables:\n";
    List.iter
      (fun (l : Types.lsda) ->
        Printf.printf "  %s @%#x:\n" l.lsda_func l.lsda_fn_addr;
        List.iter
          (fun (e : Types.lsda_entry) ->
            Printf.printf "    [%#x, +%d) -> pad %+d\n" e.lsda_start e.lsda_len e.lsda_pad)
          l.lsda_entries)
      exe.Objfile.lsdas
  end;
  if fingerprints then begin
    Printf.printf "\nFingerprints (%d):\n" (List.length exe.Objfile.fingerprints);
    let selected =
      match func with
      | Some name ->
          List.filter
            (fun (f : Fingerprint.func) -> f.Fingerprint.fp_func = name)
            exe.Objfile.fingerprints
      | None -> exe.Objfile.fingerprints
    in
    List.iter (fun f -> Fmt.pr "%a" Fingerprint.pp f) selected
  end;
  if disas then begin
    let selected =
      match func with
      | Some name -> List.filter (fun (s : Types.symbol) -> s.sym_name = name) funcs
      | None -> funcs
    in
    List.iter (dump_function exe) selected
  end;
  0
  end

let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let fdata =
  Arg.(
    value
    & pos 1 (some file) None
    & info [] ~docv:"FDATA" ~doc:"Profile for --layout-score.")
let disas = Arg.(value & flag & info [ "d"; "disassemble" ])
let func = Arg.(value & opt (some string) None & info [ "func" ] ~doc:"Only this function.")
let relocs = Arg.(value & flag & info [ "relocs" ])
let fdes = Arg.(value & flag & info [ "fdes" ])
let lsdas = Arg.(value & flag & info [ "lsdas" ])

let fingerprints =
  Arg.(
    value & flag
    & info [ "fingerprints" ]
        ~doc:
          "Print the structural fingerprint table (per-function opcode and \
           CFG-shape hashes, per-block detail) stamped at link time for \
           stale-profile matching.")

let manifest =
  Arg.(
    value & flag
    & info [ "manifest" ]
        ~doc:"Treat $(i,FILE) as a telemetry run manifest (JSON) and print its slowest spans and metrics.")

let layout_score =
  Arg.(
    value & flag
    & info [ "layout-score" ]
        ~doc:
          "Score $(i,FILE)'s block layout against the $(i,FDATA) profile: \
           per-function ExtTSP score and estimated i-cache / i-TLB working \
           sets, hottest first.")

let top =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Spans to show with --manifest.")

let cmd =
  Cmd.v
    (Cmd.info "bdump" ~doc:"inspect BELF objects and executables")
    Term.(
      const run $ path $ fdata $ disas $ func $ relocs $ fdes $ lsdas
      $ fingerprints $ manifest $ layout_score $ top)

let () = exit (Cmd.eval' cmd)
