(* perf2bolt: aggregate raw samples against a binary's symbol table and
   produce the fdata profile BOLT consumes.

     perf2bolt -p samples.bprf -o prog.fdata prog.x
     perf2bolt -p samples.bprf --host web01 --merge-into fleet.fdata prog.x

   With --host/--timestamp the shard carries a fleet provenance header
   (host, the binary's build-id, timestamp, event count).  --merge-into
   folds the fresh shard into an existing aggregate in place: the
   incremental path for hosts streaming samples into one fleet profile. *)

open Cmdliner
module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json

let run exe_path samples_path out host timestamp merge_into trace_out history =
  let obs =
    Obs.create
      ~enabled:(trace_out <> None || history <> None)
      ~name:"perf2bolt" ()
  in
  let exe = Obs.span obs "load-binary" (fun () -> Bolt_obj.Objfile.load exe_path) in
  let raw =
    Obs.span obs "load-samples" (fun () ->
        let raw = Bolt_profile.Samples.load samples_path in
        Obs.incr obs ~by:raw.Bolt_sim.Machine.rp_samples "samples.raw";
        raw)
  in
  let header =
    {
      Bolt_profile.Fdata.hd_host = host;
      hd_build_id = exe.Bolt_obj.Objfile.build_id;
      hd_timestamp = timestamp;
      hd_events = Int64.of_int raw.Bolt_sim.Machine.rp_samples;
      hd_weight = 1.0;
    }
  in
  let fdata =
    Obs.span obs "aggregate" (fun () ->
        let fdata = Bolt_profile.Perf2bolt.convert ~header exe raw in
        Obs.incr obs
          ~by:(List.length fdata.Bolt_profile.Fdata.branches)
          "fdata.branch_records";
        Obs.incr obs ~by:(List.length fdata.Bolt_profile.Fdata.ranges) "fdata.ranges";
        Obs.incr obs
          ~by:(List.length fdata.Bolt_profile.Fdata.samples)
          "fdata.ip_samples";
        fdata)
  in
  let out, fdata =
    match merge_into with
    | Some agg ->
        (* fold the fresh shard into the aggregate; first shard seeds it *)
        let fdata =
          Obs.span obs "merge-into" (fun () ->
              let shards =
                (if Sys.file_exists agg then
                   [ Bolt_fleet.Merge.load_shard agg ]
                 else [])
                @ [ Bolt_fleet.Merge.shard_of_profile ~name:"new-shard" fdata ]
              in
              Bolt_fleet.Merge.merge ~obs shards)
        in
        (agg, fdata)
    | None -> (out, fdata)
  in
  (* Atomic save: write a sibling temp file, then rename over the target.
     --merge-into rewrites the accumulated fleet aggregate in place — a
     crash mid-write must leave either the old aggregate or the new one,
     never a torn file that poisons every later merge. *)
  Obs.span obs "save-fdata" (fun () ->
      let tmp = out ^ ".tmp" in
      Bolt_profile.Fdata.save tmp fdata;
      Sys.rename tmp out);
  Fmt.pr "wrote %s: %d branch records, %d ranges, %d ip samples@." out
    (List.length fdata.Bolt_profile.Fdata.branches)
    (List.length fdata.Bolt_profile.Fdata.ranges)
    (List.length fdata.Bolt_profile.Fdata.samples);
  (match (trace_out, history) with
  | None, None -> ()
  | _ ->
      let sections =
        [
          ( "run",
            Json.Obj
              [
                ("exe", Json.String exe_path);
                ("samples", Json.String samples_path);
                ("out", Json.String out);
                ("lbr", Json.Bool raw.Bolt_sim.Machine.rp_lbr);
              ] );
        ]
      in
      let manifest =
        Bolt_obs.Manifest.make ~tool:"perf2bolt" ~argv:(Array.to_list Sys.argv)
          ~sections obs
      in
      (match trace_out with
      | Some path ->
          Bolt_obs.Manifest.save path manifest;
          Fmt.pr "wrote manifest %s@." path
      | None -> ());
      match history with
      | Some path ->
          Bolt_obs.History.append path
            (Bolt_obs.History.of_manifest
               ~workload:(Filename.basename exe_path)
               ~git_rev:(Bolt_obs.History.detect_git_rev ())
               ~build_id:exe.Bolt_obj.Objfile.build_id manifest);
          Fmt.pr "appended run history %s@." path
      | None -> ());
  0

let exe_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"EXE")

let samples =
  Arg.(required & opt (some file) None & info [ "p" ] ~docv:"SAMPLES" ~doc:"Raw samples.")

let out = Arg.(value & opt string "out.fdata" & info [ "o" ] ~doc:"Output profile.")

let host =
  Arg.(
    value & opt string ""
    & info [ "host" ] ~docv:"NAME"
        ~doc:"Stamp the shard's provenance header with this host name.")

let timestamp =
  Arg.(
    value & opt int 0
    & info [ "timestamp" ] ~docv:"SECONDS"
        ~doc:"Collection time (seconds since the fleet epoch) for the \
              provenance header; age-decay in bmerge keys on it.")

let merge_into =
  Arg.(
    value
    & opt (some string) None
    & info [ "merge-into" ] ~docv:"FDATA"
        ~doc:
          "Fold the fresh shard into the aggregate profile at $(docv) in \
           place (created if absent), instead of writing to $(b,-o).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a JSON run manifest (spans, fdata record metrics) to $(docv).")

let history =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "Append a compact run record (sample/record counts, build-id) to \
           the JSONL run-history store at $(docv); inspect the trajectory \
           with bstat.")

let cmd =
  Cmd.v
    (Cmd.info "perf2bolt" ~doc:"convert raw samples to an fdata profile")
    Term.(
      const run $ exe_path $ samples $ out $ host $ timestamp $ merge_into
      $ trace_out $ history)

let () = exit (Cmd.eval' cmd)
