(* bmerge: fold per-host fdata shards into one fleet profile — the
   merge-fdata analog.

     bmerge host*.fdata -o fleet.fdata
     bmerge host*.fdata -o fleet.fdata --weight host03.dc1=4 --decay 1e-5
     bmerge host*.fdata -o fleet.fdata --expect-build-id prog.x --report

   The merge is commutative and associative with saturating 64-bit
   counts: output bytes are identical for any shard ordering and any -j.
   --expect-build-id takes either a hex id or a BELF file to read one
   from; shards profiled against any other revision count as stale in
   the quality report.  When it names a BELF file with a fingerprint
   table, stale shards that carry their own fingerprints are recovered
   (renamed/remapped) against that revision before merging.

   Exit codes: 0 success; 3 invalid input (no shards, unreadable
   --expect-build-id); 4 --strict-shards failure; 6 merge succeeded but
   one or more shards were skipped as corrupt/truncated. *)

open Cmdliner
module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json
module Merge = Bolt_fleet.Merge
module Monitor = Bolt_fleet.Monitor
module Quality = Bolt_fleet.Quality

let parse_weight s =
  match String.index_opt s '=' with
  | Some i -> (
      let host = String.sub s 0 i in
      let w = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt w with
      | Some f when f >= 0.0 && host <> "" -> Ok (host, f)
      | _ -> Error (`Msg (Printf.sprintf "bad weight %S (want HOST=FLOAT >= 0)" s)))
  | None -> Error (`Msg (Printf.sprintf "bad weight %S (want HOST=FLOAT)" s))

let weight_conv = Arg.conv (parse_weight, fun ppf (h, w) -> Fmt.pf ppf "%s=%g" h w)

(* --expect-build-id: a BELF path (read its stamp — and its fingerprint
   table, which enables stale-shard recovery) or a literal hex id *)
let resolve_build_id = function
  | None -> (None, [])
  | Some spec ->
      if Sys.file_exists spec then (
        let exe = Bolt_obj.Objfile.load spec in
        if exe.Bolt_obj.Objfile.build_id = "" then
          Fmt.epr "bmerge: warning: %s carries no build-id (pre-v4 BELF?)@." spec;
        (Some exe.Bolt_obj.Objfile.build_id, exe.Bolt_obj.Objfile.fingerprints))
      else (Some spec, [])

let run shards out weights decay expect strict_shards report health trace_out
    history jobs stream =
  if shards = [] then begin
    Fmt.epr "bmerge: no input shards@.";
    3
  end
  else if stream then
    (* Streaming fast path: each shard is lexed straight into the global
       accumulator (Merge.merge_stream over the iocore lexer) and record
       lists never materialize.  The diagnostics that need per-shard
       record sets — quality report, health view, stale recovery — are
       incompatible by construction. *)
    if report || health || expect <> None then begin
      Fmt.epr
        "bmerge: --stream merges without materializing per-shard records; \
         it cannot be combined with --report, --health or \
         --expect-build-id@.";
      3
    end
    else begin
      match
        Merge.merge_paths
          ~opts:{ Merge.weights; decay; expect_build_id = None; jobs = max 1 jobs }
          shards
      with
      | exception Sys_error e ->
          Fmt.epr "bmerge: %s@." e;
          4
      | exception Bolt_profile.Fdata.Bad_format e ->
          Fmt.epr "bmerge: %s@." e;
          4
      | merged ->
          Bolt_profile.Fdata.save out merged;
          Fmt.pr
            "wrote %s: %d shards -> %d branch records, %d ranges, %d ip \
             samples (streaming)@."
            out (List.length shards)
            (List.length merged.Bolt_profile.Fdata.branches)
            (List.length merged.Bolt_profile.Fdata.ranges)
            (List.length merged.Bolt_profile.Fdata.samples);
          0
    end
  else
    match Merge.load_shards ~strict:strict_shards shards with
    | exception Sys_error e ->
        Fmt.epr "bmerge: %s@." e;
        4
    | exception Bolt_profile.Fdata.Bad_format e ->
        Fmt.epr "bmerge: %s@." e;
        4
    | loaded, skipped -> (
        List.iter (fun s -> Fmt.epr "bmerge: %a@." Merge.pp_skip s) skipped;
        if loaded = [] then begin
          Fmt.epr "bmerge: all %d shard(s) skipped, nothing to merge@."
            (List.length skipped);
          3
        end
        else if
          (* --health/--report over zero records would feed Quality/Monitor
             an all-empty fleet and report 0% everything as if it were
             measured; refuse with a structured diag instead *)
          (report || health)
          && List.for_all
               (fun (sh : Merge.loaded) ->
                 sh.Merge.sh_prof.Bolt_profile.Fdata.branches = []
                 && sh.Merge.sh_prof.Bolt_profile.Fdata.ranges = []
                 && sh.Merge.sh_prof.Bolt_profile.Fdata.samples = [])
               loaded
        then begin
          Fmt.epr
            "bmerge: error: --%s over %d shard(s) carrying 0 records: \
             nothing to assess (collect profiles before gating on them)@."
            (if health then "health" else "report")
            (List.length loaded);
          3
        end
        else
        match resolve_build_id expect with
        | exception _ ->
            Fmt.epr "bmerge: cannot read build-id from %s@." (Option.get expect);
            3
        | expect_build_id, target_fps ->
            let obs =
              Obs.create
                ~enabled:(trace_out <> None || history <> None)
                ~name:"bmerge" ()
            in
            let opts =
              { Merge.weights; decay; expect_build_id; jobs = max 1 jobs }
            in
            (* staleness is assessed over the shards as collected; the
               merge then consumes their recovered form *)
            let q_shards = loaded in
            let loaded, per_host_recovery =
              Merge.recover_stale_each ~fingerprints:target_fps
                ~build_id:(Option.value ~default:"" expect_build_id)
                loaded
            in
            let recovery =
              match List.map snd per_host_recovery with
              | [] -> None
              | st :: rest ->
                  Some
                    (List.fold_left Bolt_profile.Stale_match.add_stats st rest)
            in
            let merged = Merge.merge ~obs ~opts loaded in
            let q = Quality.assess ?expect_build_id ?recovery q_shards ~merged in
            Quality.to_obs obs q;
            (* one-tick health view: per-host coverage/staleness/recovery
               against the target revision (longitudinal when driven by
               the fleet simulator's rollout, a snapshot here) *)
            let monitor = Monitor.create () in
            ignore
              (Monitor.observe ~obs monitor
                 ~expected_build_id:(Option.value ~default:"" expect_build_id)
                 ~recovery:per_host_recovery q_shards ~merged);
            Obs.span obs "save" (fun () -> Bolt_profile.Fdata.save out merged);
            Fmt.pr "wrote %s: %d shards -> %d branch records, %d ranges, %d ip samples@."
              out (List.length loaded)
              (List.length merged.Bolt_profile.Fdata.branches)
              (List.length merged.Bolt_profile.Fdata.ranges)
              (List.length merged.Bolt_profile.Fdata.samples);
            if report then Fmt.pr "%a" Quality.pp q;
            if health then Fmt.pr "%a" Monitor.pp monitor;
            (match (trace_out, history) with
            | None, None -> ()
            | _ ->
                let sections =
                  [
                    ( "run",
                      Json.Obj
                        [
                          ("out", Json.String out);
                          ( "shards",
                            Json.List (List.map (fun s -> Json.String s) shards) );
                          ( "skipped_shards",
                            Json.List
                              (List.map
                                 (fun (s : Merge.skip) ->
                                   Json.Obj
                                     [
                                       ("path", Json.String s.Merge.sk_path);
                                       ("reason", Json.String s.Merge.sk_reason);
                                     ])
                                 skipped) );
                          ("jobs", Json.Int (max 1 jobs));
                        ] );
                    Quality.manifest_section q;
                    Monitor.manifest_section monitor;
                  ]
                in
                let manifest =
                  Bolt_obs.Manifest.make ~tool:"bmerge"
                    ~argv:(Array.to_list Sys.argv) ~sections obs
                in
                (match trace_out with
                | Some path ->
                    Bolt_obs.Manifest.save path manifest;
                    Fmt.pr "wrote manifest %s@." path
                | None -> ());
                match history with
                | Some path ->
                    let merged_build =
                      match merged.Bolt_profile.Fdata.header with
                      | Some h -> h.Bolt_profile.Fdata.hd_build_id
                      | None -> ""
                    in
                    Bolt_obs.History.append path
                      (Bolt_obs.History.of_manifest ~workload:"fleet-merge"
                         ~git_rev:(Bolt_obs.History.detect_git_rev ())
                         ~build_id:merged_build manifest);
                    Fmt.pr "appended run history %s@." path
                | None -> ());
            if skipped <> [] then 6 else 0)

let shards = Arg.(value & pos_all file [] & info [] ~docv:"SHARD")

let out =
  Arg.(value & opt string "fleet.fdata" & info [ "o" ] ~doc:"Merged profile output.")

let weights =
  Arg.(
    value
    & opt_all weight_conv []
    & info [ "weight" ] ~docv:"HOST=W"
        ~doc:
          "Multiply $(i,HOST)'s counts by $(i,W) (repeatable). Hosts are \
           matched by shard header, falling back to the shard file name.")

let decay =
  Arg.(
    value
    & opt (some float) None
    & info [ "decay" ] ~docv:"LAMBDA"
        ~doc:
          "Exponential age decay: scale each shard by \
           exp(-$(docv) * age), age measured back from the newest shard \
           timestamp.")

let expect =
  Arg.(
    value
    & opt (some string) None
    & info [ "expect-build-id" ] ~docv:"ID|EXE"
        ~doc:
          "Target binary revision: a hex build-id, or a BELF file to read \
           one from. Shards from other revisions count as stale in the \
           quality report.")

let strict_shards =
  Arg.(
    value & flag
    & info [ "strict-shards" ]
        ~doc:
          "Fail fast on the first unreadable or malformed shard instead of \
           skipping it (exit code 4).")

let report =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the merge quality report.")

let health =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Print the fleet health view: per-host coverage, shard age, \
           rollout state (build-id vs --expect-build-id) and threshold \
           alerts.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a JSON run manifest (spans, quality metrics) to $(docv).")

let history =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "Append a compact run record (quality metrics, fleet health, \
           merged build-id) to the JSONL run-history store at $(docv); \
           inspect the trajectory with bstat.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the parallel fold; output is byte-identical \
              for any value.")

let stream =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Stream each shard straight into the accumulator without \
           materializing its record lists (lowest memory, fastest for \
           million-line shards). Output is byte-identical to the default \
           path. Incompatible with --report, --health and \
           --expect-build-id, which need per-shard records.")

let cmd =
  Cmd.v
    (Cmd.info "bmerge" ~doc:"merge per-host fdata shards into a fleet profile")
    Term.(
      const run $ shards $ out $ weights $ decay $ expect $ strict_shards
      $ report $ health $ trace_out $ history $ jobs $ stream)

let () = exit (Cmd.eval' cmd)
