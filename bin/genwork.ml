(* genwork: emit a synthetic workload's MiniC sources to a directory.

     genwork --workload hhvm --out-dir /tmp/hhvm                *)

open Cmdliner

let run name out_dir iterations =
  let params =
    match List.assoc_opt name Bolt_workloads.Workloads.fb_workloads with
    | Some p -> p
    | None -> (
        match name with
        | "clang" -> Bolt_workloads.Workloads.clang_like
        | "gcc" -> Bolt_workloads.Workloads.gcc_like
        | _ -> Fmt.failwith "unknown workload %s" name)
  in
  let params =
    match iterations with Some i -> { params with Bolt_workloads.Gen.iterations = i } | None -> params
  in
  let w = Bolt_workloads.Gen.gen params in
  if not (Sys.file_exists out_dir) then Unix.mkdir out_dir 0o755;
  List.iter
    (fun (name, src) ->
      let oc = open_out (Filename.concat out_dir (name ^ ".mc")) in
      output_string oc src;
      close_out oc)
    w.Bolt_workloads.Gen.sources;
  List.iteri
    (fun i o ->
      Bolt_obj.Objfile.save (Filename.concat out_dir (Printf.sprintf "asm%d.bo" i)) o)
    w.Bolt_workloads.Gen.extra_objs;
  (* name/arity manifest for the hand-written assembly functions, so
     `minicc --externs` can type-check calls into the .bo objects *)
  if w.Bolt_workloads.Gen.externals <> [] then begin
    let oc = open_out (Filename.concat out_dir "externals.txt") in
    List.iter
      (fun (n, arity) -> Printf.fprintf oc "%s %d\n" n arity)
      w.Bolt_workloads.Gen.externals;
    close_out oc
  end;
  Fmt.pr "wrote %d modules (+%d asm objects) to %s@."
    (List.length w.Bolt_workloads.Gen.sources)
    (List.length w.Bolt_workloads.Gen.extra_objs)
    out_dir;
  0

let wname = Arg.(value & opt string "hhvm" & info [ "workload" ] ~doc:"hhvm|tao|proxygen|multifeed1|multifeed2|clang|gcc")
let out_dir = Arg.(value & opt string "workload" & info [ "out-dir" ])
let iters = Arg.(value & opt (some int) None & info [ "iterations" ])

let cmd =
  Cmd.v (Cmd.info "genwork" ~doc:"synthetic workload generator")
    Term.(const run $ wname $ out_dir $ iters)

let () = exit (Cmd.eval' cmd)
