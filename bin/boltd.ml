(* boltd: the continuous-optimization daemon — BOLT as a data-center
   service rather than a one-shot CLI (§7).

     boltd --tape fleet.tape prog.x --out-exe prog.bolt.x
     boltd --spool /var/spool/fdata prog.x --interval 60 --max-ticks 10
     boltd --status boltd-state.json

   Tape mode replays a scripted event tape ("<time> <host> <path>" per
   line): events sharing an arrival time form one service step.  Spool
   mode polls a directory; every file found is ingested as an arriving
   shard and moved to DIR/ingested/.  Either way the service loop is
   the same: shards accumulate in a bounded-memory sketch, merged
   quality is reassessed each step, and when the trigger policy fires
   the target binary is re-optimized with stale recovery armed.

   Determinism: the loop runs on logical event time — pass --epoch to
   also pin the manifest clock, and a tape replay is then byte-identical
   for any line order and any -j.

   Exit codes: 0 success; 3 invalid input (no mode, empty tape,
   unreadable target/manifest). *)

open Cmdliner
module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json
module Service = Bolt_service.Service
module Sketch = Bolt_service.Sketch
module P = Bolt_pipeline.Pipeline

let load_target = function
  | None -> Ok None
  | Some path -> (
      match Bolt_obj.Objfile.load path with
      | exe -> Ok (Some { P.exe; cc = Bolt_minic.Driver.default_options })
      | exception Sys_error e -> Error e
      | exception Bolt_obj.Buf.Corrupt e ->
          Error (Printf.sprintf "%s: %s" path e))

let config ~topk ~budget ~jobs ~decay ~min_hosts ~min_coverage ~max_staleness
    ~min_recovery ~max_interval ~cooldown =
  {
    Service.c_topk = topk;
    c_budget = budget;
    c_trigger =
      {
        Service.tr_min_hosts = min_hosts;
        tr_min_coverage_pct = min_coverage;
        tr_max_staleness_pct = max_staleness;
        tr_min_recovery_rate = min_recovery;
        tr_max_interval = max_interval;
        tr_cooldown_hosts = cooldown;
      };
    c_jobs = max 1 jobs;
    c_decay = decay;
    c_thresholds = Bolt_fleet.Monitor.default_thresholds;
  }

let pp_step ppf (r : Service.step_report) =
  Fmt.pf ppf "step %3d t=%d: %d shard(s), %d host(s)%s%s@." r.Service.sr_step
    r.Service.sr_time r.Service.sr_events r.Service.sr_hosts
    (match r.Service.sr_quality with
    | Some q ->
        Printf.sprintf ", coverage %.1f%%, staleness %.1f%%"
          q.Bolt_fleet.Quality.q_coverage_pct
          q.Bolt_fleet.Quality.q_staleness_pct
    | None -> "")
    (match r.Service.sr_trigger with
    | Some reason ->
        if r.Service.sr_reoptimized then
          Printf.sprintf " -> TRIGGER (%s), re-optimized" reason
        else Printf.sprintf " -> TRIGGER (%s)" reason
    | None -> "")

let finish svc ~out ~out_exe ~trace_out ~history ~argv obs =
  Fmt.pr "%a" Service.pp svc;
  (match (out, Service.last_merged svc) with
  | Some path, Some merged ->
      Bolt_profile.Fdata.save path merged;
      Fmt.pr "wrote merged profile %s@." path
  | Some path, None ->
      Fmt.epr "boltd: warning: no merged profile to write to %s@." path
  | None, _ -> ());
  (match (out_exe, Service.target svc) with
  | Some path, Some b ->
      Bolt_obj.Objfile.save path b.P.exe;
      Fmt.pr "wrote %s (build %s)@." path
        (Service.expected_build_id svc)
  | Some path, None ->
      Fmt.epr "boltd: warning: no target binary to write to %s@." path
  | None, _ -> ());
  match (trace_out, history) with
  | None, None -> ()
  | _ ->
      let sections =
        [
          Service.manifest_section svc;
          Bolt_fleet.Monitor.manifest_section (Service.monitor svc);
        ]
      in
      let manifest = Bolt_obs.Manifest.make ~tool:"boltd" ~argv ~sections obs in
      (match trace_out with
      | Some path ->
          Bolt_obs.Manifest.save path manifest;
          Fmt.pr "wrote manifest %s@." path
      | None -> ());
      (match history with
      | Some path ->
          Bolt_obs.History.append path
            (Bolt_obs.History.of_manifest ~workload:"service"
               ~git_rev:(Bolt_obs.History.detect_git_rev ())
               ~build_id:(Service.expected_build_id svc) manifest);
          Fmt.pr "appended run history %s@." path
      | None -> ())

let run_status path =
  match Bolt_obs.Manifest.load path with
  | m ->
      Fmt.pr "%a" Service.pp_status_json m;
      0
  | exception Sys_error e ->
      Fmt.epr "boltd: %s@." e;
      3
  | exception _ ->
      Fmt.epr "boltd: %s is not a readable manifest@." path;
      3

let run tape spool status target out out_exe epoch jobs topk budget min_hosts
    min_coverage max_staleness min_recovery max_interval cooldown decay
    interval max_ticks trace_out history =
  match status with
  | Some path -> run_status path
  | None -> (
      match (tape, spool) with
      | None, None ->
          Fmt.epr "boltd: pick a mode: --tape FILE, --spool DIR or --status FILE@.";
          3
      | Some _, Some _ ->
          Fmt.epr "boltd: --tape and --spool are mutually exclusive@.";
          3
      | _ -> (
          match load_target target with
          | Error e ->
              Fmt.epr "boltd: cannot load target: %s@." e;
              3
          | Ok target ->
              let obs =
                Obs.create
                  ?clock:
                    (Option.map (fun e -> fun () -> float_of_int e) epoch)
                  ~enabled:(trace_out <> None || history <> None)
                  ~name:"boltd" ()
              in
              let cfg =
                config ~topk ~budget ~jobs ~decay ~min_hosts ~min_coverage
                  ~max_staleness ~min_recovery ~max_interval ~cooldown
              in
              let argv = Array.to_list Sys.argv in
              (match tape with
              | Some path -> (
                  match Service.load_tape path with
                  | exception Sys_error e ->
                      Fmt.epr "boltd: %s@." e;
                      3
                  | events, skips ->
                      List.iter
                        (fun s -> Fmt.epr "boltd: %a@." Service.pp_skip s)
                        skips;
                      if events = [] then begin
                        Fmt.epr "boltd: tape %s holds no events@." path;
                        3
                      end
                      else begin
                        let start_time =
                          List.fold_left
                            (fun a (e : Service.event) -> min a e.Service.ev_time)
                            max_int events
                        in
                        let svc =
                          Service.create ~obs ~config:cfg ?target ~start_time ()
                        in
                        let reports = Service.run svc events in
                        List.iter (fun r -> Fmt.pr "%a" pp_step r) reports;
                        finish svc ~out ~out_exe ~trace_out ~history ~argv obs;
                        0
                      end)
              | None ->
                  (* spool mode *)
                  let dir = Option.get spool in
                  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
                    Fmt.epr "boltd: spool %s is not a directory@." dir;
                    3
                  end
                  else begin
                    let ingested = Filename.concat dir "ingested" in
                    if not (Sys.file_exists ingested) then Unix.mkdir ingested 0o755;
                    let svc =
                      Service.create ~obs ~config:cfg ?target
                        ~start_time:(Option.value ~default:0 epoch) ()
                    in
                    let tick = ref 0 in
                    let continue () = max_ticks <= 0 || !tick < max_ticks in
                    while continue () do
                      incr tick;
                      let entries, skips =
                        Service.spool_scan ~default_time:!tick dir
                      in
                      List.iter
                        (fun s -> Fmt.epr "boltd: %a@." Service.pp_skip s)
                        skips;
                      if entries <> [] then begin
                        let r = Service.step svc (List.map snd entries) in
                        Fmt.pr "%a" pp_step r;
                        List.iter
                          (fun (path, _) ->
                            Sys.rename path
                              (Filename.concat ingested (Filename.basename path)))
                          entries
                      end;
                      if continue () && interval > 0.0 then Unix.sleepf interval
                    done;
                    finish svc ~out ~out_exe ~trace_out ~history ~argv obs;
                    0
                  end)))

let tape =
  Arg.(
    value
    & opt (some file) None
    & info [ "tape" ] ~docv:"FILE"
        ~doc:
          "Replay a scripted event tape: one \"<time> <host> <shard-path>\" \
           per line ('#' comments). Events sharing a time form one service \
           step. The replay is deterministic for any line order and any -j.")

let spool =
  Arg.(
    value
    & opt (some string) None
    & info [ "spool" ] ~docv:"DIR"
        ~doc:
          "Poll $(docv) for arriving fdata shards; each poll is one service \
           step and consumed shards move to $(docv)/ingested/.")

let status =
  Arg.(
    value
    & opt (some file) None
    & info [ "status" ] ~docv:"FILE"
        ~doc:"Render the ASCII service status from a manifest written by \
              --trace-out, then exit.")

let target =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"TARGET.x"
        ~doc:
          "BELF binary to re-optimize when the trigger fires. Omitted, the \
           service tracks quality and records triggers without rewriting.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o" ] ~docv:"FILE" ~doc:"Write the last merged fleet profile.")

let out_exe =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-exe" ] ~docv:"FILE"
        ~doc:"Write the current (possibly re-optimized) target binary.")

let epoch =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"SECONDS"
        ~doc:
          "Pin the telemetry clock to a constant epoch: manifests and \
           history records become byte-reproducible (all durations zero).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sharded merge and the rewrite; results \
           are byte-identical for any value.")

let topk =
  Arg.(
    value & opt int 512
    & info [ "topk" ] ~docv:"K"
        ~doc:"Sketch bound: functions retained per host (largest event mass).")

let budget =
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "sketch-budget" ] ~docv:"BYTES"
        ~doc:
          "Sketch bound: global byte budget over all hosts' retained \
           entries (cost-model estimate; evictions are counted in \
           service.sketch_evictions).")

let min_hosts =
  Arg.(
    value & opt int 4
    & info [ "min-hosts" ] ~docv:"N"
        ~doc:"Trigger gate: no re-optimization before $(docv) hosts reported.")

let min_coverage =
  Arg.(
    value & opt float 25.0
    & info [ "trigger-coverage" ] ~docv:"PCT"
        ~doc:"Trigger gate: minimum merged-profile coverage.")

let max_staleness =
  Arg.(
    value & opt float 60.0
    & info [ "trigger-staleness" ] ~docv:"PCT"
        ~doc:"Trigger gate: maximum share of events from stale shards.")

let min_recovery =
  Arg.(
    value & opt float 0.3
    & info [ "trigger-recovery" ] ~docv:"RATE"
        ~doc:"Trigger gate: minimum stale-recovery rate, when recovery ran.")

let max_interval =
  Arg.(
    value & opt int 0
    & info [ "max-interval" ] ~docv:"SECONDS"
        ~doc:
          "Max-staleness timer: re-optimize at least every $(docv) seconds \
           of logical time while shards arrive (0 = off).")

let cooldown =
  Arg.(
    value & opt int 1
    & info [ "cooldown-hosts" ] ~docv:"N"
        ~doc:"Fresh shard arrivals required between quality triggers.")

let decay =
  Arg.(
    value
    & opt (some float) None
    & info [ "decay" ] ~docv:"LAMBDA"
        ~doc:"Exponential age decay for the merge (see bmerge --decay).")

let interval =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"SECONDS"
        ~doc:"Spool mode: seconds between polls.")

let max_ticks =
  Arg.(
    value & opt int 0
    & info [ "max-ticks" ] ~docv:"N"
        ~doc:"Spool mode: stop after $(docv) polls (0 = run forever).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON run manifest (service + fleet_health sections) to \
           $(docv); boltd --status renders it.")

let history =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "Append a compact run record (service metrics, fleet health) to \
           the JSONL run-history store at $(docv); gate with bstat.")

let cmd =
  Cmd.v
    (Cmd.info "boltd"
       ~doc:"continuous-optimization service over arriving fdata shards")
    Term.(
      const run $ tape $ spool $ status $ target $ out $ out_exe $ epoch $ jobs
      $ topk $ budget $ min_hosts $ min_coverage $ max_staleness $ min_recovery
      $ max_interval $ cooldown $ decay $ interval $ max_ticks $ trace_out
      $ history)

let () = exit (Cmd.eval' cmd)
