(* obolt: the post-link optimizer CLI, mirroring the paper's llvm-bolt
   invocation:

     obolt prog.x -b prog.fdata -o prog.bolted.x \
       -reorder-blocks=ext-tsp -reorder-functions=hfsort+ \
       -split-functions=3 -split-all-cold -split-eh -icf=1 -dyno-stats  *)

open Cmdliner
module Obs = Bolt_obs.Obs
module Json = Bolt_obs.Json

(* Exit codes: 0 success, 3 invalid input (binary or profile), 4 a
   --strict violation, 5 the --max-quarantine budget was exceeded.
   (1 and 2 belong to cmdliner: user error / internal error.) *)
let exit_invalid_input = 3
let exit_strict = 4
let exit_quarantine = 5

let run exe_path fdata out reorder_blocks reorder_functions split_functions
    split_all_cold split_eh icf icp inline_small plt sro frame_opts shrink sctc
    strip_nops stale_match dyno_stats report_bad_layout use_relocs strict
    max_quarantine print_funcs trace_out time_opts history jobs =
  try
  (* telemetry is free when none of --trace-out/--time-opts/--history
     asks for it; enabled, it costs a handful of spans per run *)
  let obs =
    Obs.create
      ~enabled:(trace_out <> None || time_opts || history <> None)
      ~name:"obolt" ()
  in
  let exe = Obs.span obs "load-binary" (fun () -> Bolt_obj.Objfile.load exe_path) in
  let prof, prof_warnings =
    Obs.span obs "load-profile" (fun () ->
        let prof, warnings = Bolt_profile.Fdata.load_with_warnings ~strict fdata in
        Obs.incr obs ~by:(List.length warnings) "profile.parse_warnings";
        Obs.incr obs ~by:(List.length prof.Bolt_profile.Fdata.branches)
          "profile.branch_records";
        (prof, warnings))
  in
  List.iter (Fmt.epr "obolt: %a@." Bolt_profile.Fdata.pp_warning) prof_warnings;
  let opts =
    {
      Bolt_core.Opts.default with
      strict;
      max_quarantine;
      reorder_blocks =
        (match reorder_blocks with
        | "none" -> Bolt_core.Opts.Rb_none
        | "cache" -> Bolt_core.Opts.Rb_cache
        | "cache+" -> Bolt_core.Opts.Rb_cache_plus
        | "ext-tsp" -> Bolt_core.Opts.Rb_ext_tsp
        | s -> Fmt.failwith "unknown -reorder-blocks=%s" s);
      reorder_functions =
        (match reorder_functions with
        | "none" -> Bolt_core.Opts.Rf_none
        | "hfsort" -> Bolt_core.Opts.Rf_hfsort
        | "hfsort+" -> Bolt_core.Opts.Rf_hfsort_plus
        | "pettis-hansen" -> Bolt_core.Opts.Rf_pettis_hansen
        | s -> Fmt.failwith "unknown -reorder-functions=%s" s);
      split_functions =
        (match split_functions with
        | 0 -> Bolt_core.Opts.Split_none
        | 1 | 2 -> Bolt_core.Opts.Split_large
        | _ -> Bolt_core.Opts.Split_all);
      split_all_cold;
      split_eh;
      icf;
      icp;
      inline_small;
      plt;
      simplify_ro_loads = sro;
      frame_opts;
      shrink_wrapping = shrink;
      sctc;
      strip_nops;
      stale_match;
      use_relocations = use_relocs;
      jobs =
        (match jobs with
        | Some j -> j
        | None -> Bolt_core.Pool.default_jobs ());
    }
  in
  let exe', report = Bolt_core.Bolt.optimize ~opts ~obs exe prof in
  Obs.span obs "save-binary" (fun () -> Bolt_obj.Objfile.save out exe');
  Fmt.pr "wrote %s@." out;
  Obs.finish obs;
  if time_opts then Fmt.pr "%a" Bolt_obs.Trace.pp_table obs.Obs.trace;
  let manifest =
    if trace_out <> None || history <> None then
      Some
        (Bolt_obs.Manifest.make ~tool:"obolt"
           ~argv:(Array.to_list Sys.argv)
           ~sections:(Bolt_core.Bolt.manifest_sections report)
           obs)
    else None
  in
  (match (trace_out, manifest) with
  | Some path, Some m ->
      Bolt_obs.Manifest.save path m;
      Fmt.pr "wrote manifest %s@." path
  | _ -> ());
  (match (history, manifest) with
  | Some path, Some m ->
      Bolt_obs.History.append path
        (Bolt_obs.History.of_manifest
           ~workload:(Filename.basename exe_path)
           ~git_rev:(Bolt_obs.History.detect_git_rev ())
           ~build_id:exe'.Bolt_obj.Objfile.build_id m);
      Fmt.pr "appended run history %s@." path
  | _ -> ());
  if dyno_stats then Fmt.pr "%a@." Bolt_core.Bolt.pp_report report;
  if report_bad_layout then begin
    Fmt.pr "bad-layout findings (original layout):@.";
    List.iter (Fmt.pr "  %a" Bolt_core.Report.pp_finding) report.Bolt_core.Bolt.r_bad_layout
  end;
  List.iter
    (fun name ->
      let ctx = Bolt_core.Context.create ~opts exe in
      Bolt_core.Build.run ctx;
      match Bolt_core.Context.func ctx name with
      | Some fb -> Fmt.pr "%a@." Bolt_core.Bfunc.pp fb
      | None -> Fmt.epr "no function %s@." name)
    print_funcs;
  0
  with
  | Bolt_obj.Buf.Corrupt msg ->
      Fmt.epr "obolt: corrupt input: %s@." msg;
      exit_invalid_input
  | Bolt_core.Context.Bolt_error msg ->
      Fmt.epr "obolt: %s@." msg;
      exit_invalid_input
  | Bolt_profile.Fdata.Bad_format msg ->
      Fmt.epr "obolt: bad profile: %s@." msg;
      exit_invalid_input
  | Bolt_core.Diag.Strict_error msg ->
      Fmt.epr "obolt: strict mode violation: %s@." msg;
      exit_strict
  | Bolt_core.Diag.Quarantine_limit n ->
      Fmt.epr "obolt: quarantine limit exceeded: %d function(s) demoted@." n;
      exit_quarantine

let exe_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"EXE")
let fdata = Arg.(required & opt (some file) None & info [ "b" ] ~doc:"fdata profile.")
let out = Arg.(value & opt string "bolted.x" & info [ "o" ] ~doc:"Output binary.")

let reorder_blocks =
  Arg.(
    value
    & opt string "ext-tsp"
    & info [ "reorder-blocks" ]
        ~doc:"none|cache|cache+|ext-tsp (cache/cache+ kept for A/B runs)")

let reorder_functions =
  Arg.(value & opt string "hfsort+" & info [ "reorder-functions" ] ~doc:"none|hfsort|hfsort+|pettis-hansen")

let split_functions =
  Arg.(value & opt int 3 & info [ "split-functions" ] ~doc:"0=off 1/2=large 3=all")

let split_all_cold = Arg.(value & opt bool true & info [ "split-all-cold" ])
let split_eh = Arg.(value & opt bool true & info [ "split-eh" ])
let icf = Arg.(value & opt bool true & info [ "icf" ])
let icp = Arg.(value & opt bool true & info [ "icp" ])
let inline_small = Arg.(value & opt bool true & info [ "inline-small" ])
let plt = Arg.(value & opt bool true & info [ "plt" ])
let sro = Arg.(value & opt bool true & info [ "simplify-ro-loads" ])
let frame_opts = Arg.(value & opt bool true & info [ "frame-opts" ])
let shrink = Arg.(value & opt bool true & info [ "shrink-wrapping" ])
let sctc = Arg.(value & opt bool true & info [ "sctc" ])
let strip_nops = Arg.(value & opt bool true & info [ "strip-nops" ])

let stale_match =
  Arg.(
    value & opt bool true
    & info [ "stale-match" ]
        ~doc:
          "Recover a profile whose build-id doesn't match the input binary \
           via fingerprint matching before attaching it.")
let dyno_stats = Arg.(value & flag & info [ "dyno-stats" ])
let report_bad_layout = Arg.(value & flag & info [ "report-bad-layout" ])

let use_relocs =
  Arg.(value & opt (some bool) None & info [ "use-relocations" ] ~doc:"Force relocations mode on/off.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail hard instead of degrading: any verifier issue, malformed \
           profile record or function quarantine aborts the run.")

let max_quarantine =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-quarantine" ] ~docv:"N"
        ~doc:"Abort when more than $(docv) functions are quarantined.")

let print_funcs =
  Arg.(value & opt_all string [] & info [ "print-cfg" ] ~docv:"FUNC" ~doc:"Dump a function's CFG.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable run manifest (trace spans, metrics \
           registry, dyno-stats, profile quality, quarantine diagnostics) \
           as JSON to $(docv).")

let time_opts =
  Arg.(
    value & flag
    & info [ "time-opts" ]
        ~doc:
          "Print a per-pass wall-clock timing table (llvm-bolt's -time-opts), \
           including a per-function p50/p99 column for parallel passes.")

let history =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "Append a compact run record (meta, per-pass wall times, metrics, \
           dyno-stats, build-id, git revision) to the JSONL run-history \
           store at $(docv); inspect the trajectory with bstat.")

let jobs =
  let jobs_conv =
    ( (fun s ->
        match int_of_string_opt s with
        | Some j when j >= 1 -> `Ok j
        | _ -> `Error (s ^ ": need at least one domain")),
      Format.pp_print_int )
  in
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for per-function passes (default: the machine's \
           recommended domain count). Output is byte-identical for any $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "obolt" ~doc:"post-link binary optimizer (BOLT reproduction)")
    Term.(
      const run $ exe_path $ fdata $ out $ reorder_blocks $ reorder_functions
      $ split_functions $ split_all_cold $ split_eh $ icf $ icp $ inline_small $ plt
      $ sro $ frame_opts $ shrink $ sctc $ strip_nops $ stale_match
      $ dyno_stats $ report_bad_layout
      $ use_relocs $ strict $ max_quarantine $ print_funcs $ trace_out $ time_opts
      $ history $ jobs)

let () = exit (Cmd.eval' cmd)
