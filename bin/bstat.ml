(* bstat: longitudinal statistics over run manifests and the JSONL
   run-history store.

     bstat list  --history BENCH_history.jsonl
     bstat diff  --history h.jsonl            # previous vs latest run
     bstat diff  --history h.jsonl 1 4        # run #1 vs run #4
     bstat diff  a.json b.json                # two manifest files
     bstat check --history h.jsonl            # latest vs rolling baseline
     bstat check --history h.jsonl --baseline 5 --threshold 'wall_s=+10' \
                 --threshold 'fleet.recovery.rate=-5'

   `check` compares the newest record against the mean of the previous K
   runs (same tool+workload), using per-metric threshold rules, and
   exits 7 when any metric regressed — the CI/bench gate.

   Exit codes: 0 clean; 3 invalid input (no/unreadable history, schema
   mismatch between records); 7 regression detected. *)

open Cmdliner
module Json = Bolt_obs.Json
module History = Bolt_obs.History
module Compare = Bolt_obs.Compare
module Manifest = Bolt_obs.Manifest

let exit_invalid = 3
let exit_regression = 7

(* ---- shared loading ---- *)

let load_history path =
  let records, warnings = History.load path in
  List.iter (fun w -> Fmt.epr "bstat: %a@." History.pp_warning w) warnings;
  records

(* "latest" = run -1, "latest~N" = N runs before that (git-style). *)
let parse_latest spec =
  if spec = "latest" then Some (-1)
  else
    match String.index_opt spec '~' with
    | Some 6 when String.sub spec 0 6 = "latest" -> (
        match
          int_of_string_opt (String.sub spec 7 (String.length spec - 7))
        with
        | Some k when k >= 0 -> Some (-1 - k)
        | _ -> None)
    | _ -> None

(* A diff operand: an existing JSON file (manifest or history record),
   "latest"/"latest~N", or a 1-based run number into --history
   (negative counts from the end: -1 = latest). *)
let resolve_operand ~history ~records spec : (Json.t * string, string) result =
  if Sys.file_exists spec then
    match Manifest.load spec with
    | j -> Ok (j, spec)
    | exception Json.Parse_error msg ->
        Error (Printf.sprintf "%s: %s" spec msg)
    | exception Sys_error msg -> Error msg
  else
    match
      match parse_latest spec with
      | Some n -> Some n
      | None -> int_of_string_opt spec
    with
    | None ->
        Error
          (Printf.sprintf "%s: not a file, a run number or latest~N" spec)
    | Some n -> (
        let total = List.length records in
        let idx = if n < 0 then total + n else n - 1 in
        match List.nth_opt records idx with
        | Some r -> Ok (r, Printf.sprintf "%s#%d" history (idx + 1))
        | None ->
            Error
              (Printf.sprintf "run %d out of range (history has %d record%s)"
                 n total (if total = 1 then "" else "s")))

(* ---- list ---- *)

let run_list history =
  let records = load_history history in
  if records = [] then begin
    Fmt.pr "history %s: no records@." history;
    0
  end
  else begin
    Fmt.pr "history %s: %d record(s)@." history (List.length records);
    Fmt.pr "  %4s  %-9s %-14s %-10s %-12s %10s@." "run" "tool" "workload"
      "git-rev" "build-id" "wall(s)";
    List.iteri
      (fun i r ->
        let short s n = if String.length s > n then String.sub s 0 n else s in
        let dash s = if s = "" then "-" else s in
        Fmt.pr "  %4d  %-9s %-14s %-10s %-12s %10.3f@." (i + 1)
          (dash (History.tool_of r))
          (short (dash (History.workload_of r)) 14)
          (short (dash (History.git_rev_of r)) 10)
          (short (dash (History.build_id_of r)) 12)
          (History.wall_of r))
      records;
    0
  end

(* ---- diff ---- *)

let run_diff history operands all =
  let records = if Sys.file_exists history then load_history history else [] in
  let specs =
    match operands with
    | [] -> [ "-2"; "-1" ]
    | [ a ] -> [ a; "-1" ]
    | l -> l
  in
  match specs with
  | [ sa; sb ] -> (
      match
        ( resolve_operand ~history ~records sa,
          resolve_operand ~history ~records sb )
      with
      | Error e, _ | _, Error e ->
          Fmt.epr "bstat: %s@." e;
          exit_invalid
      | Ok (a, la), Ok (b, lb) -> (
          match Compare.compatible a b with
          | Error why ->
              Fmt.epr "bstat: incompatible records:@.";
              Fmt.epr "  %s: %s@." la (Compare.schema_of a);
              Fmt.epr "  %s: %s@." lb (Compare.schema_of b);
              Fmt.epr "  %s@." why;
              exit_invalid
          | Ok () ->
              let rows = Compare.diff_rows a b in
              let shown = if all then rows else Compare.changed rows in
              Fmt.pr "diff %s -> %s (%d metric%s, %d changed)@." la lb
                (List.length rows)
                (if List.length rows = 1 then "" else "s")
                (List.length (Compare.changed rows));
              if shown = [] then Fmt.pr "  (no differences)@."
              else Fmt.pr "%a" (Compare.pp_rows ~labels:(la, lb)) shown;
              0))
  | _ ->
      Fmt.epr "bstat: diff takes at most two operands@.";
      exit_invalid

(* ---- check ---- *)

let run_check history baseline thresholds no_defaults all_workloads =
  let records = load_history history in
  let rules =
    (if no_defaults then [] else Compare.default_rules)
    @ List.rev thresholds
  in
  match List.rev records with
  | [] ->
      Fmt.epr "bstat: %s: no history records to check@." history;
      exit_invalid
  | latest :: older ->
      (* the rolling baseline: previous K compatible runs of the same
         tool and workload (a fig5 bench record must not gate on a fleet
         record's metrics) *)
      let comparable r =
        Compare.compatible r latest = Ok ()
        && History.tool_of r = History.tool_of latest
        && (all_workloads
           || History.workload_of r = History.workload_of latest)
      in
      let window =
        List.filteri (fun i _ -> i < baseline) (List.filter comparable older)
      in
      if window = [] then begin
        Fmt.pr
          "bstat: no comparable baseline runs in %s (need previous runs of \
           tool=%s workload=%s); nothing to gate@."
          history (History.tool_of latest)
          (History.workload_of latest);
        0
      end
      else begin
        (* a --threshold rule matching no metric of the latest record can
           never fire — almost always a typo'd path; say so.  The default
           rules intentionally span tools (fleet vs bench metrics), so
           only user-supplied rules are checked. *)
        List.iter
          (fun r ->
            Fmt.epr
              "bstat: warning: unmatched rule %a (no metric path in the \
               latest record matches)@."
              Compare.pp_rule r)
          (Compare.unmatched_rules ~rules:(List.rev thresholds) latest);
        let verdicts = Compare.check ~rules ~baseline:window latest in
        Fmt.pr "check: latest run vs %d-run rolling baseline (%d rule%s)@."
          (List.length window) (List.length rules)
          (if List.length rules = 1 then "" else "s");
        if verdicts = [] then begin
          Fmt.pr "  OK: no metric moved past its threshold@.";
          0
        end
        else begin
          List.iter (fun v -> Fmt.pr "  %a@." Compare.pp_verdict v) verdicts;
          Fmt.pr "  %d regression(s) detected@." (List.length verdicts);
          exit_regression
        end
      end

(* ---- cmdliner plumbing ---- *)

let history_arg =
  Arg.(
    value
    & opt string "BENCH_history.jsonl"
    & info [ "history" ] ~docv:"FILE"
        ~doc:"JSONL run-history file (written via the tools' --history flag).")

let threshold_conv =
  Arg.conv
    ( (fun s ->
        match Compare.parse_rule s with
        | Ok r -> Ok r
        | Error e -> Error (`Msg e)),
      Compare.pp_rule )

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"list the runs recorded in a history file")
    Term.(const run_list $ history_arg)

let diff_cmd =
  let operands =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"RUN"
          ~doc:
            "What to diff: a manifest/record file, a 1-based run number in \
             --history (negative counts from the end), or latest / \
             latest~N. Defaults to the previous and latest history runs.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Show unchanged metrics too, not just the deltas.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"diff two runs (manifest files or history records) as an aligned table")
    Term.(const run_diff $ history_arg $ operands $ all)

let check_cmd =
  let baseline =
    Arg.(
      value & opt int 3
      & info [ "baseline" ] ~docv:"K"
          ~doc:"Rolling-baseline window: compare against the previous $(docv) \
                comparable runs.")
  in
  let thresholds =
    Arg.(
      value
      & opt_all threshold_conv []
      & info [ "threshold" ] ~docv:"PATH=±PCT"
          ~doc:
            "Add a regression rule (repeatable): $(i,PATH)=+10 fires when \
             the metric rises more than 10% over baseline, $(i,PATH)=-5 when \
             it falls more than 5%. $(i,PATH) may contain '*' globs.")
  in
  let no_defaults =
    Arg.(
      value & flag
      & info [ "no-default-thresholds" ]
          ~doc:"Gate only on --threshold rules, dropping the built-in \
                conservative set.")
  in
  let all_workloads =
    Arg.(
      value & flag
      & info [ "all-workloads" ]
          ~doc:"Build the baseline from any previous run of the same tool, \
                ignoring the workload label.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "gate the latest history run against a rolling baseline (exit 7 on \
          regression)")
    Term.(
      const run_check $ history_arg $ baseline $ thresholds $ no_defaults
      $ all_workloads)

let cmd =
  Cmd.group
    (Cmd.info "bstat"
       ~doc:"list, diff and regression-gate run manifests over time")
    [ list_cmd; diff_cmd; check_cmd ]

let () = exit (Cmd.eval' cmd)
